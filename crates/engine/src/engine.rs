//! The query engine: one machine of the paper's distributed system.
//!
//! Wires together the m-way join instance, the memory tracker, the spill
//! store, and the local adaptation controller. The cluster layer drives
//! a [`QueryEngine`] through five entry points:
//!
//! * [`QueryEngine::process`] — data path;
//! * [`QueryEngine::tick`] — the `ss_timer` pulse (local spill trigger);
//! * [`QueryEngine::force_spill`] — the `start_ss` command of the
//!   active-disk strategy (Algorithm 2);
//! * [`QueryEngine::select_parts_to_move`] /
//!   [`QueryEngine::extract_groups`] / [`QueryEngine::install_groups`] —
//!   the engine-side legs of the relocation protocol;
//! * [`QueryEngine::cleanup`] — the post-run cleanup phase.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dcape_common::error::{DcapeError, Result};
use dcape_common::hash::FxHashSet;
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::mem::MemoryTracker;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::Tuple;
use dcape_metrics::journal::{AdaptEvent, JournalHandle, SpillTrigger};
use dcape_storage::{SpillBackend, SpillStore, SpilledGroup};

use crate::config::EngineConfig;
use crate::controller::{LocalController, Mode};
use crate::operators::mjoin::MJoinOperator;
use crate::sink::ResultSink;
use crate::spill::cleanup::merge_segments_windowed;
use crate::stats::EngineStatsReport;

/// Result of one spill adaptation on one engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillOutcome {
    /// When the spill ran.
    pub at: VirtualTime,
    /// Partition groups pushed.
    pub groups: Vec<PartitionId>,
    /// Accounted state bytes freed.
    pub state_bytes: u64,
    /// Physically encoded bytes written.
    pub encoded_bytes: u64,
    /// Virtual-time disk cost of the writes.
    pub io_cost: VirtualDuration,
}

/// Result of the cleanup phase on one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CleanupReport {
    /// Partitions that had disk-resident segments.
    pub partitions: usize,
    /// Missing results produced.
    pub missing_results: u64,
    /// Tuples scanned during merging.
    pub scanned_tuples: u64,
    /// Accounted state bytes read back from disk.
    pub disk_state_bytes_read: u64,
    /// Modeled virtual-time cost of the whole cleanup (I/O + compute).
    pub virtual_cost: VirtualDuration,
}

/// One partition group in transit during relocation: the state
/// snapshot, its accumulated `P_output`, and whether the partition must
/// stay purge-protected on the receiver (spill segments left behind on
/// the sender still owe cross-slice cleanup results).
pub type ExtractedGroup = (SpilledGroup, u64, bool);

/// One machine's query engine.
#[derive(Debug)]
pub struct QueryEngine {
    id: EngineId,
    cfg: EngineConfig,
    join: MJoinOperator,
    store: SpillStore,
    tracker: Arc<MemoryTracker>,
    controller: LocalController,
    rng: StdRng,
    spill_history: Vec<SpillOutcome>,
    last_report_window: u64,
    journal: JournalHandle,
    /// Latest virtual time seen at a timed entry point; timestamps
    /// journal events from untimed paths (cleanup, reactivation).
    clock: VirtualTime,
    /// Cluster-wide purge protection: partitions whose disk-resident
    /// spill segments live on *another* engine (flagged during
    /// relocation install). Their memory tuples still owe cross-slice
    /// cleanup results, so the window purge must skip them just as it
    /// skips locally-spilled partitions.
    purge_protect: FxHashSet<PartitionId>,
    /// Relocation rounds below this id are closed; re-delivered protocol
    /// messages for them are stale no-ops (chaos-layer idempotency).
    min_live_round: u64,
    /// Outbound relocation copy retained until the round commits, so an
    /// abort (retries exhausted, peer dead) can reinstall the shipped
    /// state — losing an `InstallStates` must never lose operator state.
    pending_outbound: Option<(u64, Vec<ExtractedGroup>)>,
    /// Uncommitted inbound installation: round id plus the partitions it
    /// installed, so a duplicate install is detected (re-ack, no-op) and
    /// an abort or crash can uninstall exactly what arrived.
    inbound_round: Option<(u64, Vec<PartitionId>)>,
}

impl QueryEngine {
    /// Build an engine over the given spill backend.
    pub fn new(id: EngineId, cfg: EngineConfig, backend: Box<dyn SpillBackend>) -> Result<Self> {
        cfg.validate()?;
        let tracker = MemoryTracker::new(cfg.memory_budget);
        let join = MJoinOperator::new(cfg.join.clone(), Arc::clone(&tracker))?;
        let controller = LocalController::new(
            cfg.ss_timer,
            cfg.spill_threshold,
            cfg.spill_fraction,
            VirtualTime::ZERO,
        );
        Ok(QueryEngine {
            rng: StdRng::seed_from_u64(0xE_0DD + id.0 as u64),
            id,
            join,
            store: SpillStore::with_codec(backend, cfg.spill_codec),
            tracker,
            controller,
            cfg,
            spill_history: Vec::new(),
            last_report_window: 0,
            journal: JournalHandle::disabled(),
            clock: VirtualTime::ZERO,
            purge_protect: FxHashSet::default(),
            min_live_round: 0,
            pending_outbound: None,
            inbound_round: None,
        })
    }

    /// Convenience: engine with an in-memory spill backend.
    pub fn in_memory(id: EngineId, cfg: EngineConfig) -> Result<Self> {
        Self::new(id, cfg, Box::new(dcape_storage::MemBackend::new()))
    }

    /// This engine's ID.
    pub fn id(&self) -> EngineId {
        self.id
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Current execution mode.
    pub fn mode(&self) -> Mode {
        self.controller.mode()
    }

    /// Transition execution mode (driven by the relocation protocol).
    pub fn set_mode(&mut self, mode: Mode) {
        self.controller.set_mode(mode);
    }

    /// Accounted memory in use.
    pub fn memory_used(&self) -> u64 {
        self.tracker.used()
    }

    /// Total results produced.
    pub fn total_output(&self) -> u64 {
        self.join.total_output()
    }

    /// The join operator (read access for drivers and tests).
    pub fn join(&self) -> &MJoinOperator {
        &self.join
    }

    /// The spill store (read access).
    pub fn store(&self) -> &SpillStore {
        &self.store
    }

    /// Spill operations performed so far.
    pub fn spill_history(&self) -> &[SpillOutcome] {
        &self.spill_history
    }

    /// Attach an adaptation-event journal. Engines start with a
    /// disabled handle; drivers install a real one per engine so the
    /// runtimes can merge per-engine timelines afterwards.
    pub fn set_journal(&mut self, journal: JournalHandle) {
        self.journal = journal;
    }

    /// The attached journal handle (cloneable, possibly disabled).
    pub fn journal(&self) -> &JournalHandle {
        &self.journal
    }

    /// Process one routed tuple. Returns the number of results emitted.
    pub fn process(
        &mut self,
        pid: PartitionId,
        tuple: Tuple,
        sink: &mut dyn ResultSink,
    ) -> Result<u64> {
        self.journal.add_tuples_routed(1);
        self.join.process(pid, tuple, sink)
    }

    /// Process a whole batch of routed tuples (one tick's worth from one
    /// split operator). Returns the number of results emitted. Counter
    /// updates are amortized to one per batch; results and state are
    /// identical to calling [`QueryEngine::process`] per tuple.
    pub fn process_batch(
        &mut self,
        batch: dcape_common::batch::TupleBatch,
        sink: &mut dyn ResultSink,
    ) -> Result<u64> {
        self.journal.add_tuples_routed(batch.len() as u64);
        self.join.process_batch(batch, sink)
    }

    /// The `ss_timer` pulse: purge window-expired state (windowed
    /// queries only), then spill if memory exceeded the threshold and
    /// the engine is in normal mode (Algorithm 1, events at QE).
    ///
    /// Purges at `now` — callers that track an in-flight watermark use
    /// [`QueryEngine::tick_with_horizon`] instead.
    pub fn tick(&mut self, now: VirtualTime) -> Result<Option<SpillOutcome>> {
        self.tick_with_horizon(now, now)
    }

    /// The `ss_timer` pulse with a watermark-driven purge horizon:
    /// purge window-expired state up to `horizon` (which lags `now`
    /// while tuples sit buffered at paused splits), then run the spill
    /// check at `now`. `horizon == now` is the plain clock-driven
    /// behavior.
    pub fn tick_with_horizon(
        &mut self,
        now: VirtualTime,
        horizon: VirtualTime,
    ) -> Result<Option<SpillOutcome>> {
        self.clock = self.clock.max(now);
        self.purge_at(horizon);
        match self
            .controller
            .check_spill_trigger(now, self.tracker.used())
        {
            Some(amount) => {
                self.journal.record(
                    now,
                    AdaptEvent::MemoryPressure {
                        engine: self.id,
                        used: self.tracker.used(),
                        budget: self.cfg.memory_budget,
                    },
                );
                Ok(Some(self.spill_bytes(
                    amount,
                    now,
                    SpillTrigger::MemoryThreshold,
                )?))
            }
            None => Ok(None),
        }
    }

    /// Purge window-expired state up to `horizon` only — no spill
    /// check, no mode side effects. Used for the catch-up purge when a
    /// relocation's `Resume` releases a held-back watermark. Returns
    /// the number of tuples dropped (0 for unwindowed queries).
    pub fn purge_at(&mut self, horizon: VirtualTime) -> usize {
        if self.cfg.join.window.is_none() {
            return 0;
        }
        let skip = self.purge_skip_set();
        self.join.purge_expired(horizon, &skip)
    }

    /// Partitions the window purge must skip: those with disk-resident
    /// segments *here*, plus those whose segments live on another
    /// engine after a relocation (`purge_protect`).
    fn purge_skip_set(&self) -> FxHashSet<PartitionId> {
        let mut skip: FxHashSet<PartitionId> =
            self.store.partitions_with_segments().into_iter().collect();
        skip.extend(self.purge_protect.iter().copied());
        skip
    }

    /// The active-disk `start_ss` command: spill `amount` bytes now,
    /// regardless of the local threshold (Algorithm 2, lines 24–27).
    pub fn force_spill(&mut self, amount: u64, now: VirtualTime) -> Result<SpillOutcome> {
        self.clock = self.clock.max(now);
        self.spill_bytes(amount, now, SpillTrigger::Forced)
    }

    fn spill_bytes(
        &mut self,
        amount: u64,
        now: VirtualTime,
        trigger: SpillTrigger,
    ) -> Result<SpillOutcome> {
        self.controller.set_mode(Mode::Spill);
        let victims = self.cfg.victim_policy.select_victims(
            self.join.group_stats_with(self.cfg.estimator),
            amount,
            &mut self.rng,
        );
        let mut outcome = SpillOutcome {
            at: now,
            groups: Vec::with_capacity(victims.len()),
            state_bytes: 0,
            encoded_bytes: 0,
            io_cost: VirtualDuration::ZERO,
        };
        for pid in victims {
            let Some((snapshot, freed)) = self.join.drain_group(pid) else {
                continue;
            };
            let meta = self.store.spill_group(&snapshot)?;
            outcome.groups.push(pid);
            outcome.state_bytes += freed as u64;
            outcome.encoded_bytes += meta.encoded_bytes;
            outcome.io_cost = outcome.io_cost + self.cfg.cost.disk.io_cost(meta.state_bytes);
        }
        self.controller.set_mode(Mode::Normal);
        self.journal.add_spill_bytes(outcome.state_bytes);
        self.journal.add_spill_bytes_written(outcome.encoded_bytes);
        self.journal.record(
            now,
            AdaptEvent::SpillDecision {
                engine: self.id,
                trigger,
                groups: outcome.groups.clone(),
                state_bytes: outcome.state_bytes,
                encoded_bytes: outcome.encoded_bytes,
                memory_used: self.tracker.used(),
                memory_budget: self.cfg.memory_budget,
            },
        );
        self.spill_history.push(outcome.clone());
        Ok(outcome)
    }

    /// `computePartsToMove`: the most productive groups up to `amount`
    /// bytes (the local half of the relocation decision).
    pub fn select_parts_to_move(&self, amount: u64) -> Vec<PartitionId> {
        self.controller
            .compute_parts_to_move(self.join.group_stats_with(self.cfg.estimator), amount)
    }

    /// Extract the given groups for relocation (releases their memory).
    /// Unknown partitions are skipped — they may have been spilled
    /// between selection and extraction.
    ///
    /// The third element is the cluster-wide purge-protect flag: true
    /// when this engine still holds disk-resident segments for the
    /// partition (they stay behind — only memory state relocates), or
    /// when the partition was itself installed here with protection
    /// from an earlier round (protection is transitive across chained
    /// relocations). The receiver must keep such partitions out of its
    /// window purge until cleanup.
    pub fn extract_groups(&mut self, pids: &[PartitionId]) -> Vec<ExtractedGroup> {
        pids.iter()
            .filter_map(|pid| {
                let (snapshot, output) = self.join.extract_group(*pid)?;
                let protect =
                    !self.store.segments_of(*pid).is_empty() || self.purge_protect.remove(pid);
                Some((snapshot, output, protect))
            })
            .collect()
    }

    /// Install relocated groups arriving from another engine. Groups
    /// flagged purge-protected (segments left behind on the sender)
    /// join this engine's protected set.
    pub fn install_groups(&mut self, groups: Vec<ExtractedGroup>) -> Result<()> {
        for (snapshot, output, protect) in groups {
            if protect {
                self.purge_protect.insert(snapshot.partition);
            }
            self.join.install_group(snapshot, output)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Relocation idempotency & crash recovery (chaos hardening).
    //
    // Every protocol step keys on a round id; a re-delivered message for
    // a closed round is a no-op, a duplicate install for the live round
    // re-acks without reinstalling, and an abort restores the exact
    // pre-round state on both ends. The sender's shipped copy counts as
    // stable (it survives a crash), the receiver's installation does not
    // until committed.
    // ------------------------------------------------------------------

    /// Is `round` already closed on this engine? Stale (delayed or
    /// duplicated) protocol messages for closed rounds must be ignored.
    pub fn is_stale_round(&self, round: u64) -> bool {
        round < self.min_live_round
    }

    /// Mark `round` closed (committed or aborted): later re-deliveries
    /// of its messages become stale no-ops.
    pub fn note_round_closed(&mut self, round: u64) {
        self.min_live_round = self.min_live_round.max(round + 1);
    }

    /// Does this engine hold a retained outbound copy for `round`?
    /// Drivers use it to journal the extraction exactly once — retries
    /// re-ship the same copy.
    pub fn outbound_pending(&self, round: u64) -> bool {
        matches!(&self.pending_outbound, Some((r, _)) if *r == round)
    }

    /// Sender side of step 4: extract `pids` for shipment and retain a
    /// copy until the round commits. Returns the groups to ship.
    /// Re-invocations for the same round (a retried `SendStates`) re-ship
    /// the retained copy instead of extracting again.
    pub fn begin_outbound(&mut self, round: u64, pids: &[PartitionId]) -> Vec<ExtractedGroup> {
        if let Some((r, groups)) = &self.pending_outbound {
            if *r == round {
                return groups.clone();
            }
        }
        let groups = self.extract_groups(pids);
        self.pending_outbound = Some((round, groups.clone()));
        groups
    }

    /// Sender side of step 7/8: the round committed — drop the retained
    /// outbound copy and close the round.
    pub fn commit_outbound(&mut self, round: u64) {
        if matches!(&self.pending_outbound, Some((r, _)) if *r == round) {
            self.pending_outbound = None;
        }
        self.note_round_closed(round);
    }

    /// Sender side of an abort: reinstall the retained outbound copy —
    /// the partitions never changed owner, so their state must be back
    /// here before buffered tuples replay. Returns the number of groups
    /// reinstalled (0 if nothing was pending for `round`).
    pub fn abort_outbound(&mut self, round: u64) -> Result<usize> {
        let reinstalled = match self.pending_outbound.take() {
            Some((r, groups)) if r == round => {
                let n = groups.len();
                self.install_groups(groups)?;
                n
            }
            other => {
                self.pending_outbound = other;
                0
            }
        };
        self.note_round_closed(round);
        Ok(reinstalled)
    }

    /// Receiver side of step 5, idempotent: install `groups` for
    /// `round`. Returns `Ok(false)` — a no-op that should still be
    /// re-acked — when the round is stale or the same round was already
    /// installed (a duplicated `InstallStates`); `Ok(true)` on first
    /// installation.
    pub fn install_groups_for_round(
        &mut self,
        round: u64,
        groups: Vec<ExtractedGroup>,
    ) -> Result<bool> {
        if self.is_stale_round(round) {
            return Ok(false);
        }
        if matches!(&self.inbound_round, Some((r, _)) if *r == round) {
            return Ok(false);
        }
        let pids: Vec<PartitionId> = groups.iter().map(|(g, _, _)| g.partition).collect();
        self.install_groups(groups)?;
        self.inbound_round = Some((round, pids));
        Ok(true)
    }

    /// Receiver side of step 7/8: the round committed — the installed
    /// groups are now permanently this engine's; close the round.
    pub fn commit_inbound(&mut self, round: u64) {
        if matches!(&self.inbound_round, Some((r, _)) if *r == round) {
            self.inbound_round = None;
        }
        self.note_round_closed(round);
    }

    /// Receiver side of an abort: uninstall whatever `round` installed
    /// (the sender reinstalls its retained copy; keeping both would
    /// double state and double outputs). Returns the number of groups
    /// discarded.
    pub fn abort_inbound(&mut self, round: u64) -> Result<usize> {
        let discarded = match self.inbound_round.take() {
            Some((r, pids)) if r == round => self.extract_groups(&pids).len(),
            other => {
                self.inbound_round = other;
                0
            }
        };
        self.note_round_closed(round);
        Ok(discarded)
    }

    /// Crash-restart this engine mid-protocol: an uncommitted inbound
    /// installation is lost (it never reached stable storage — the
    /// sender's retained copy is the source of truth and the round will
    /// abort or retry), the retained outbound copy survives (stable),
    /// and the engine restarts in normal mode. Returns the number of
    /// inbound groups the crash wiped.
    pub fn crash_restart(&mut self) -> Result<usize> {
        let wiped = match self.inbound_round.take() {
            Some((_, pids)) => self.extract_groups(&pids).len(),
            None => 0,
        };
        self.controller.set_mode(Mode::Normal);
        Ok(wiped)
    }

    /// Produce the periodic statistics report for the coordinator and
    /// start a fresh sampling window.
    pub fn report(&mut self, now: VirtualTime) -> EngineStatsReport {
        self.clock = self.clock.max(now);
        // The stats cadence doubles as the per-group sampling window
        // for the decaying productivity estimator.
        if let crate::state::productivity::ProductivityEstimator::Decaying { alpha } =
            self.cfg.estimator
        {
            self.join.close_productivity_windows(alpha);
        }
        let num_groups = self.join.group_count();
        let (window_output, rate) = self.join.window_mut().take_window(num_groups);
        self.last_report_window = window_output;
        EngineStatsReport {
            engine: self.id,
            at: now,
            memory_used: self.tracker.used(),
            memory_budget: self.cfg.memory_budget,
            num_groups,
            window_output,
            total_output: self.join.total_output(),
            avg_productivity_rate: rate,
            spilled_bytes: self.store.state_bytes_on_disk(),
            spill_count: self.spill_history.len() as u64,
        }
    }

    /// Partitions with disk-resident segments on this engine (sorted).
    pub fn spilled_partitions(&self) -> Vec<PartitionId> {
        self.store.partitions_with_segments()
    }

    /// Take (read + remove) all disk-resident segments of one partition,
    /// in spill order — used by cluster-wide cleanup, where a partition's
    /// segments may live on a different engine than its current owner
    /// after relocations.
    pub fn take_spilled_segments(&mut self, pid: PartitionId) -> Result<Vec<SpilledGroup>> {
        self.take_segments_journaled(pid)
    }

    /// [`SpillStore::take_segments`] with the physically read encoded
    /// bytes journaled (every disk read-back path funnels through here).
    fn take_segments_journaled(&mut self, pid: PartitionId) -> Result<Vec<SpilledGroup>> {
        let before = self.store.stats().encoded_bytes_read;
        let groups = self.store.take_segments(pid)?;
        self.journal
            .add_spill_bytes_read(self.store.stats().encoded_bytes_read - before);
        Ok(groups)
    }

    /// Read access to a partition's segment metadata (cost accounting).
    pub fn spilled_segment_metas(&self, pid: PartitionId) -> &[dcape_storage::SegmentMeta] {
        self.store.segments_of(pid)
    }

    /// Extract the memory-resident group of `pid`, if present (cleanup
    /// and relocation use; releases its memory).
    pub fn extract_resident_group(&mut self, pid: PartitionId) -> Option<(SpilledGroup, u64)> {
        self.join.extract_group(pid)
    }

    /// Import segments that another engine spilled for a partition this
    /// engine owns (distributed cleanup: segments are forwarded to the
    /// owner before the parallel merge). Order among slices does not
    /// affect the merge's correctness — slices are disjoint
    /// co-residency epochs.
    pub fn import_segments(&mut self, segments: Vec<SpilledGroup>) -> Result<()> {
        for segment in segments {
            let meta = self.store.spill_group(&segment)?;
            self.journal.add_spill_bytes_written(meta.encoded_bytes);
        }
        Ok(())
    }

    /// Run the cleanup phase over every partition with disk-resident
    /// segments, merging in the memory-resident group where present and
    /// emitting the missing results into `sink`.
    pub fn cleanup(&mut self, sink: &mut dyn ResultSink) -> Result<CleanupReport> {
        let mut report = CleanupReport::default();
        let cost = self.cfg.cost;
        for pid in self.store.partitions_with_segments() {
            // Disk I/O cost, from metadata (before consuming them).
            let mut pid_disk_bytes = 0u64;
            for meta in self.store.segments_of(pid) {
                report.virtual_cost = report.virtual_cost + cost.disk.io_cost(meta.state_bytes);
                pid_disk_bytes += meta.state_bytes;
            }
            report.disk_state_bytes_read += pid_disk_bytes;
            let mut segments = self.take_segments_journaled(pid)?;
            if let Some((resident, _output)) = self.join.extract_group(pid) {
                segments.push(resident);
            }
            let outcome = merge_segments_windowed(
                &self.cfg.join.join_columns,
                self.cfg.join.window,
                segments,
                sink,
            )?;
            report.partitions += 1;
            report.missing_results += outcome.missing_results;
            report.scanned_tuples += outcome.scanned_tuples;
            self.journal.record(
                self.clock,
                AdaptEvent::CleanupPhase {
                    engine: self.id,
                    group: pid,
                    missing_results: outcome.missing_results,
                    scanned_tuples: outcome.scanned_tuples,
                    disk_bytes_read: pid_disk_bytes,
                },
            );
        }
        let compute_us = report.scanned_tuples * cost.cleanup_scan_us_per_tuple
            + report.missing_results * cost.cleanup_emit_us_per_result;
        report.virtual_cost = report.virtual_cost + VirtualDuration::from_millis(compute_us / 1000);
        Ok(report)
    }

    /// Run-time reactivation of one spilled partition (§3: "this state
    /// cleanup process can be performed at any time when memory becomes
    /// available"): merge the partition's disk-resident segments with
    /// its memory-resident group, emit the missing results into `sink`,
    /// and install the fully merged group back in memory — the
    /// partition becomes *active* again.
    ///
    /// Returns `None` if the partition has no disk-resident segments.
    /// Callers are responsible for checking that memory headroom exists.
    pub fn reactivate_partition(
        &mut self,
        pid: PartitionId,
        sink: &mut dyn ResultSink,
    ) -> Result<Option<CleanupReport>> {
        let mut report = CleanupReport::default();
        let cost = self.cfg.cost;
        if self.store.segments_of(pid).is_empty() {
            return Ok(None);
        }
        for meta in self.store.segments_of(pid) {
            report.virtual_cost = report.virtual_cost + cost.disk.io_cost(meta.state_bytes);
            report.disk_state_bytes_read += meta.state_bytes;
        }
        let mut segments = self.take_segments_journaled(pid)?;
        let mut carried_output = 0;
        if let Some((resident, output)) = self.join.extract_group(pid) {
            carried_output = output;
            segments.push(resident);
        }
        let outcome = merge_segments_windowed(
            &self.cfg.join.join_columns,
            self.cfg.join.window,
            segments.clone(),
            sink,
        )?;
        report.partitions = 1;
        report.missing_results = outcome.missing_results;
        report.scanned_tuples = outcome.scanned_tuples;
        let compute_us = report.scanned_tuples * cost.cleanup_scan_us_per_tuple
            + report.missing_results * cost.cleanup_emit_us_per_result;
        report.virtual_cost = report.virtual_cost + VirtualDuration::from_millis(compute_us / 1000);
        self.journal.record(
            self.clock,
            AdaptEvent::CleanupPhase {
                engine: self.id,
                group: pid,
                missing_results: outcome.missing_results,
                scanned_tuples: outcome.scanned_tuples,
                disk_bytes_read: report.disk_state_bytes_read,
            },
        );

        // Rebuild the merged in-memory group from all slices.
        let mut merged = SpilledGroup::empty(pid, self.cfg.join.num_streams);
        for segment in segments {
            for (s, mut tuples) in segment.per_stream.into_iter().enumerate() {
                merged.per_stream[s].append(&mut tuples);
            }
        }
        self.join
            .install_group(merged, carried_output + outcome.missing_results)?;
        Ok(Some(report))
    }

    /// Opportunistic run-time reactivation: when the configured
    /// watermark is set and memory is comfortably below the spill
    /// threshold, pick the smallest spilled partition whose merged
    /// state fits under the threshold and reactivate it. At most one
    /// partition per call (drivers call this on their clock pulse).
    pub fn maybe_reactivate(&mut self, sink: &mut dyn ResultSink) -> Result<Option<CleanupReport>> {
        let Some(watermark) = self.cfg.reactivate_watermark else {
            return Ok(None);
        };
        let threshold = self.cfg.spill_threshold;
        let used = self.tracker.used();
        if used as f64 >= threshold as f64 * watermark {
            return Ok(None);
        }
        // Smallest spilled partition (by accounted disk bytes) that
        // fits back under the threshold.
        let candidate = self
            .store
            .partitions_with_segments()
            .into_iter()
            .map(|pid| {
                let bytes: u64 = self
                    .store
                    .segments_of(pid)
                    .iter()
                    .map(|m| m.state_bytes)
                    .sum();
                (bytes, pid)
            })
            .filter(|(bytes, _)| used + bytes < threshold)
            .min();
        match candidate {
            Some((_, pid)) => self.reactivate_partition(pid, sink),
            None => Ok(None),
        }
    }

    /// Debug-only accounting drift check: recompute state bytes from
    /// scratch and compare with the incremental tracker.
    pub fn assert_accounting_consistent(&self) -> Result<()> {
        let recomputed = self.join.recompute_state_bytes() as u64;
        let tracked = self.tracker.used();
        if recomputed != tracked {
            return Err(DcapeError::state(format!(
                "accounting drift on {}: tracked {tracked}, recomputed {recomputed}",
                self.id
            )));
        }
        let incremental = self.join.state_bytes() as u64;
        if recomputed != incremental {
            return Err(DcapeError::state(format!(
                "incremental state-bytes drift on {}: incremental {incremental}, recomputed {recomputed}",
                self.id
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CostModel, EngineConfig};
    use crate::sink::{CollectingSink, CountingSink};
    use crate::spill::policy::VictimPolicy;
    use dcape_common::ids::StreamId;
    use dcape_common::tuple::TupleBuilder;
    use dcape_storage::DiskModel;

    fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
        TupleBuilder::new(StreamId(stream))
            .seq(seq)
            .ts(VirtualTime::from_millis(seq * 30))
            .value(key)
            .pad(100)
            .build()
    }

    fn engine(budget: u64, threshold: u64) -> QueryEngine {
        QueryEngine::in_memory(EngineId(0), EngineConfig::three_way(budget, threshold)).unwrap()
    }

    fn fill(e: &mut QueryEngine, keys: i64, reps: u64) -> u64 {
        let mut sink = CountingSink::new();
        for rep in 0..reps {
            for key in 0..keys {
                for s in 0..3u8 {
                    e.process(
                        PartitionId((key % 4) as u32),
                        tpl(s, rep * keys as u64 + key as u64, key),
                        &mut sink,
                    )
                    .unwrap();
                }
            }
        }
        sink.count()
    }

    #[test]
    fn process_and_account() {
        let mut e = engine(1 << 20, 1 << 19);
        let results = fill(&mut e, 8, 3);
        assert!(results > 0);
        assert_eq!(e.total_output(), results);
        e.assert_accounting_consistent().unwrap();
        assert!(e.memory_used() > 0);
    }

    #[test]
    fn tick_spills_when_over_threshold() {
        // Tiny threshold so a few tuples overflow it.
        let mut e = engine(1 << 20, 512);
        fill(&mut e, 8, 4);
        assert!(e.memory_used() > 512);
        let outcome = e
            .tick(VirtualTime::from_secs(10))
            .unwrap()
            .expect("spill should trigger");
        assert!(!outcome.groups.is_empty());
        assert!(outcome.state_bytes > 0);
        assert!(outcome.io_cost > VirtualDuration::ZERO);
        assert_eq!(e.spill_history().len(), 1);
        assert_eq!(e.store().segment_count(), outcome.groups.len());
        e.assert_accounting_consistent().unwrap();
        // Below-threshold tick does nothing.
        let mut quiet = engine(1 << 20, 1 << 19);
        fill(&mut quiet, 2, 1);
        assert!(quiet.tick(VirtualTime::from_secs(10)).unwrap().is_none());
    }

    #[test]
    fn force_spill_ignores_threshold() {
        let mut e = engine(1 << 20, 1 << 19);
        fill(&mut e, 8, 2);
        let used = e.memory_used();
        let outcome = e.force_spill(used / 2, VirtualTime::from_secs(1)).unwrap();
        assert!(outcome.state_bytes >= used / 2);
        assert!(e.memory_used() < used);
    }

    #[test]
    fn relocation_extract_install_round_trip() {
        let mut a = engine(1 << 20, 1 << 19);
        let mut b = engine(1 << 20, 1 << 19);
        fill(&mut a, 8, 2);
        let amount = a.memory_used() / 2;
        let parts = a.select_parts_to_move(amount);
        assert!(!parts.is_empty());
        let groups = a.extract_groups(&parts);
        assert_eq!(groups.len(), parts.len());
        let moved_bytes: u64 = groups.iter().map(|(g, _, _)| g.state_bytes() as u64).sum();
        b.install_groups(groups).unwrap();
        assert!(moved_bytes > 0);
        a.assert_accounting_consistent().unwrap();
        b.assert_accounting_consistent().unwrap();
        for pid in &parts {
            assert!(b.join().has_group(*pid));
            assert!(!a.join().has_group(*pid));
        }
    }

    #[test]
    fn report_closes_sampling_window() {
        let mut e = engine(1 << 20, 1 << 19);
        let produced = fill(&mut e, 4, 3);
        let r1 = e.report(VirtualTime::from_secs(1));
        assert_eq!(r1.window_output, produced);
        assert_eq!(r1.total_output, produced);
        assert!(r1.avg_productivity_rate > 0.0);
        assert_eq!(r1.engine, EngineId(0));
        // Fresh window is empty.
        let r2 = e.report(VirtualTime::from_secs(2));
        assert_eq!(r2.window_output, 0);
        assert_eq!(r2.total_output, produced);
    }

    /// The central correctness property: run-time results + cleanup
    /// results together equal the reference join, with no duplicates,
    /// regardless of spills in between.
    #[test]
    fn spill_plus_cleanup_equals_reference_join() {
        let cfg = EngineConfig::three_way(1 << 20, 1 << 19)
            .with_policy(VictimPolicy::LeastProductive)
            .with_cost(CostModel {
                cleanup_scan_us_per_tuple: 0,
                cleanup_emit_us_per_result: 0,
                disk: DiskModel::free(),
            });
        let mut e =
            QueryEngine::new(EngineId(1), cfg, Box::new(dcape_storage::MemBackend::new())).unwrap();
        let mut runtime_sink = CollectingSink::new();
        let mut all_tuples: Vec<Tuple> = Vec::new();
        let mut seq = 0u64;
        // Interleave processing with forced spills.
        for round in 0..6 {
            for key in 0..6i64 {
                for s in 0..3u8 {
                    let t = tpl(s, seq, key);
                    seq += 1;
                    all_tuples.push(t.clone());
                    e.process(PartitionId((key % 3) as u32), t, &mut runtime_sink)
                        .unwrap();
                }
            }
            if round % 2 == 1 {
                e.force_spill(e.memory_used() / 2, VirtualTime::from_secs(round))
                    .unwrap();
            }
        }
        let mut cleanup_sink = CollectingSink::new();
        let report = e.cleanup(&mut cleanup_sink).unwrap();
        assert!(report.partitions > 0);
        assert!(report.missing_results > 0);
        assert_eq!(report.missing_results as usize, cleanup_sink.len());

        // Reference join: all same-key triples.
        let mut reference: Vec<Vec<(u8, u64)>> = Vec::new();
        for a in all_tuples.iter().filter(|t| t.stream().0 == 0) {
            for b in all_tuples.iter().filter(|t| t.stream().0 == 1) {
                for c in all_tuples.iter().filter(|t| t.stream().0 == 2) {
                    if a.get(0) == b.get(0) && b.get(0) == c.get(0) {
                        reference.push(vec![(0, a.seq()), (1, b.seq()), (2, c.seq())]);
                    }
                }
            }
        }
        reference.sort();
        let mut produced = runtime_sink.identities();
        produced.extend(cleanup_sink.identities());
        produced.sort();
        assert_eq!(produced, reference, "loss or duplication detected");
    }

    #[test]
    fn cleanup_on_clean_engine_is_empty() {
        let mut e = engine(1 << 20, 1 << 19);
        fill(&mut e, 4, 1);
        let mut sink = CountingSink::new();
        let report = e.cleanup(&mut sink).unwrap();
        assert_eq!(report.partitions, 0);
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn cleanup_cost_model_charges_io_and_compute() {
        let mut e = engine(1 << 20, 512);
        fill(&mut e, 8, 4);
        e.force_spill(e.memory_used(), VirtualTime::from_secs(1))
            .unwrap();
        fill(&mut e, 8, 2);
        let mut sink = CountingSink::new();
        let report = e.cleanup(&mut sink).unwrap();
        assert!(report.virtual_cost > VirtualDuration::ZERO);
        assert!(report.disk_state_bytes_read > 0);
        assert!(report.scanned_tuples > 0);
    }

    /// Reactivation mid-run: the partition becomes active again and the
    /// overall result set stays exact.
    #[test]
    fn reactivate_partition_restores_activity_and_exactness() {
        let cfg = EngineConfig::three_way(1 << 20, 1 << 19).with_cost(CostModel {
            cleanup_scan_us_per_tuple: 1,
            cleanup_emit_us_per_result: 1,
            disk: DiskModel::default_2006(),
        });
        let mut e = QueryEngine::in_memory(EngineId(2), cfg).unwrap();
        let mut sink = CollectingSink::new();
        let mut all = Vec::new();
        let mut seq = 0u64;
        let feed = |e: &mut QueryEngine,
                    sink: &mut CollectingSink,
                    all: &mut Vec<Tuple>,
                    key: i64,
                    seq: &mut u64| {
            for s in 0..3u8 {
                let t = tpl(s, *seq, key);
                *seq += 1;
                all.push(t.clone());
                e.process(PartitionId(0), t, sink).unwrap();
            }
        };
        feed(&mut e, &mut sink, &mut all, 1, &mut seq);
        feed(&mut e, &mut sink, &mut all, 1, &mut seq);
        // Spill everything, then more tuples arrive (inactive period).
        e.force_spill(u64::MAX / 2, VirtualTime::from_secs(1))
            .unwrap();
        feed(&mut e, &mut sink, &mut all, 1, &mut seq);
        // Reactivate: missing cross results emitted, state back in memory.
        let report = e
            .reactivate_partition(PartitionId(0), &mut sink)
            .unwrap()
            .expect("had segments");
        assert!(report.missing_results > 0);
        assert!(report.virtual_cost > VirtualDuration::ZERO);
        assert_eq!(e.store().segment_count(), 0);
        assert!(e.join().has_group(PartitionId(0)));
        e.assert_accounting_consistent().unwrap();
        // New tuples now join against the FULL merged state again.
        feed(&mut e, &mut sink, &mut all, 1, &mut seq);

        // Exactness: everything ever owed has been emitted.
        let mut reference: Vec<Vec<(u8, u64)>> = Vec::new();
        for a in all.iter().filter(|t| t.stream().0 == 0) {
            for b in all.iter().filter(|t| t.stream().0 == 1) {
                for c in all.iter().filter(|t| t.stream().0 == 2) {
                    if a.get(0) == b.get(0) && b.get(0) == c.get(0) {
                        reference.push(vec![(0, a.seq()), (1, b.seq()), (2, c.seq())]);
                    }
                }
            }
        }
        reference.sort();
        assert_eq!(sink.identities(), reference);
        // Reactivating again is a no-op.
        let mut sink2 = CountingSink::new();
        assert!(e
            .reactivate_partition(PartitionId(0), &mut sink2)
            .unwrap()
            .is_none());
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let cfg = EngineConfig::three_way(100, 200); // threshold > budget
        assert!(QueryEngine::in_memory(EngineId(0), cfg).is_err());
    }
}

#[cfg(test)]
mod reactivation_tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::sink::CountingSink;
    use dcape_common::ids::StreamId;
    use dcape_common::tuple::TupleBuilder;

    fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
        TupleBuilder::new(StreamId(stream))
            .seq(seq)
            .ts(VirtualTime::from_millis(seq * 30))
            .value(key)
            .pad(100)
            .build()
    }

    #[test]
    fn watermark_reactivates_when_memory_frees_up() {
        let cfg = EngineConfig::three_way(1 << 20, 64 << 10).with_reactivation(0.5);
        let mut e = QueryEngine::in_memory(EngineId(0), cfg).unwrap();
        let mut sink = CountingSink::new();
        for seq in 0..40u64 {
            for s in 0..3u8 {
                e.process(
                    PartitionId((seq % 4) as u32),
                    tpl(s, seq, (seq % 4) as i64),
                    &mut sink,
                )
                .unwrap();
            }
        }
        // Spill everything: memory -> 0, disk has segments.
        e.force_spill(u64::MAX / 2, VirtualTime::from_secs(1))
            .unwrap();
        assert!(e.store().segment_count() > 0);
        assert_eq!(e.memory_used(), 0);
        // Memory is far below the watermark: reactivation fires.
        let before = sink.count();
        let report = e.maybe_reactivate(&mut sink).unwrap();
        assert!(report.is_some());
        assert!(e.memory_used() > 0, "state back in memory");
        // Single spilled slice per pid => nothing was missing.
        assert_eq!(sink.count(), before);
        // Repeated calls drain the remaining partitions one at a time.
        let mut rounds = 0;
        while e.maybe_reactivate(&mut sink).unwrap().is_some() {
            rounds += 1;
            assert!(rounds < 100, "must terminate");
        }
        assert_eq!(e.store().segment_count(), 0);
        e.assert_accounting_consistent().unwrap();
    }

    #[test]
    fn no_watermark_means_no_reactivation() {
        let cfg = EngineConfig::three_way(1 << 20, 64 << 10);
        let mut e = QueryEngine::in_memory(EngineId(0), cfg).unwrap();
        let mut sink = CountingSink::new();
        for s in 0..3u8 {
            e.process(PartitionId(0), tpl(s, 0, 0), &mut sink).unwrap();
        }
        e.force_spill(u64::MAX / 2, VirtualTime::from_secs(1))
            .unwrap();
        assert!(e.maybe_reactivate(&mut sink).unwrap().is_none());
        assert!(e.store().segment_count() > 0);
    }

    #[test]
    fn reactivation_waits_for_headroom() {
        // Watermark set, but memory sits above it: no reactivation.
        let cfg = EngineConfig::three_way(1 << 20, 32 << 10).with_reactivation(0.1);
        let mut e = QueryEngine::in_memory(EngineId(0), cfg).unwrap();
        let mut sink = CountingSink::new();
        for seq in 0..40u64 {
            for s in 0..3u8 {
                e.process(
                    PartitionId((seq % 4) as u32),
                    tpl(s, seq, (seq % 4) as i64),
                    &mut sink,
                )
                .unwrap();
            }
        }
        // Spill half; remaining memory is above 10% of the threshold.
        e.force_spill(e.memory_used() / 2, VirtualTime::from_secs(1))
            .unwrap();
        assert!(e.memory_used() > (32 << 10) / 10);
        assert!(e.maybe_reactivate(&mut sink).unwrap().is_none());
    }

    #[test]
    fn invalid_watermark_rejected() {
        let cfg = EngineConfig::three_way(1 << 20, 64 << 10).with_reactivation(1.5);
        assert!(QueryEngine::in_memory(EngineId(0), cfg).is_err());
    }
}
