//! The local adaptation controller (§2 "Distributed Software
//! Architecture", Tables 1–2, and the QE halves of Algorithms 1–2).
//!
//! Each query engine owns one controller. It tracks the engine's
//! execution [`Mode`], runs the `ss_timer` that detects imminent memory
//! overflow, computes spill amounts (`computeSpillAmount`), and picks
//! the concrete partition groups for both adaptations
//! (`computePartsToMove` for relocation, the victim policy for spill) —
//! the paper's tiered design keeps these *local* decisions out of the
//! global coordinator.

use dcape_common::ids::PartitionId;
use dcape_common::time::{PeriodicTimer, VirtualDuration, VirtualTime};

use crate::state::productivity::{sort_most_productive_first, GroupStats};

/// Execution modes of a query engine (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Normal query plan execution; no adaptation in progress.
    #[default]
    Normal,
    /// A state-spill process is running on this engine (`ss_mode`).
    Spill,
    /// This engine participates in a state-relocation protocol round
    /// (`sr_mode`).
    Relocation,
}

/// Per-engine adaptation controller.
#[derive(Debug)]
pub struct LocalController {
    mode: Mode,
    ss_timer: PeriodicTimer,
    spill_threshold: u64,
    spill_fraction: f64,
}

impl LocalController {
    /// Create a controller with the given spill trigger parameters.
    pub fn new(
        ss_timer_period: VirtualDuration,
        spill_threshold: u64,
        spill_fraction: f64,
        start: VirtualTime,
    ) -> Self {
        LocalController {
            mode: Mode::Normal,
            ss_timer: PeriodicTimer::new(ss_timer_period, start),
            spill_threshold,
            spill_fraction,
        }
    }

    /// Current execution mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Transition modes; the cluster protocol and the spill path drive
    /// this (Algorithm 1 lines 13–20, 27–31).
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// `ss_timer_expired` handler condition (Algorithm 1, lines 24–32):
    /// returns the spill amount if (a) the timer fired, (b) memory
    /// exceeds the threshold, and (c) the engine is in normal mode
    /// ("else don't spill now, wait until next timer expires").
    /// Resets the timer whenever it has expired.
    pub fn check_spill_trigger(&mut self, now: VirtualTime, memory_used: u64) -> Option<u64> {
        if !self.ss_timer.expired(now) {
            return None;
        }
        self.ss_timer.reset(now);
        if memory_used > self.spill_threshold && self.mode == Mode::Normal {
            Some(self.compute_spill_amount(memory_used))
        } else {
            None
        }
    }

    /// `computeSpillAmount`: push `spill_fraction` (the `k%` of Figures
    /// 5/6) of the currently used memory.
    pub fn compute_spill_amount(&self, memory_used: u64) -> u64 {
        ((memory_used as f64) * self.spill_fraction).ceil() as u64
    }

    /// `computePartsToMove`: choose the **most productive** groups up to
    /// `amount` bytes for relocation — productive partitions stay in
    /// (some machine's) main memory, per the lazy-disk design (§5.1).
    pub fn compute_parts_to_move(
        &self,
        mut stats: Vec<GroupStats>,
        amount: u64,
    ) -> Vec<PartitionId> {
        sort_most_productive_first(&mut stats);
        crate::spill::policy::take_until_bytes(&stats, amount)
    }

    /// Spill threshold in bytes.
    pub fn spill_threshold(&self) -> u64 {
        self.spill_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> LocalController {
        LocalController::new(VirtualDuration::from_secs(5), 1000, 0.3, VirtualTime::ZERO)
    }

    fn gs(pid: u32, bytes: usize, output: u64) -> GroupStats {
        GroupStats::new(PartitionId(pid), bytes, output)
    }

    #[test]
    fn starts_normal() {
        assert_eq!(ctl().mode(), Mode::Normal);
    }

    #[test]
    fn spill_triggers_only_after_timer_and_over_threshold() {
        let mut c = ctl();
        // Timer not yet expired.
        assert_eq!(c.check_spill_trigger(VirtualTime::from_secs(1), 5000), None);
        // Timer expired, memory below threshold.
        assert_eq!(c.check_spill_trigger(VirtualTime::from_secs(5), 500), None);
        // Timer was reset by the previous call — not expired again yet.
        assert_eq!(c.check_spill_trigger(VirtualTime::from_secs(6), 5000), None);
        // Expired again and over threshold: 30% of 5000.
        assert_eq!(
            c.check_spill_trigger(VirtualTime::from_secs(10), 5000),
            Some(1500)
        );
    }

    #[test]
    fn no_spill_while_relocating() {
        let mut c = ctl();
        c.set_mode(Mode::Relocation);
        assert_eq!(
            c.check_spill_trigger(VirtualTime::from_secs(10), 9000),
            None
        );
        c.set_mode(Mode::Normal);
        assert!(c
            .check_spill_trigger(VirtualTime::from_secs(20), 9000)
            .is_some());
    }

    #[test]
    fn spill_amount_is_fraction_of_used() {
        let c = ctl();
        assert_eq!(c.compute_spill_amount(1000), 300);
        assert_eq!(c.compute_spill_amount(1), 1); // ceil
        assert_eq!(c.spill_threshold(), 1000);
    }

    #[test]
    fn parts_to_move_prefers_productive_groups() {
        let c = ctl();
        let stats = vec![gs(0, 100, 0), gs(1, 100, 500), gs(2, 100, 100)];
        let parts = c.compute_parts_to_move(stats, 150);
        assert_eq!(parts, vec![PartitionId(1), PartitionId(2)]);
    }

    #[test]
    fn mode_round_trip() {
        let mut c = ctl();
        c.set_mode(Mode::Spill);
        assert_eq!(c.mode(), Mode::Spill);
        c.set_mode(Mode::Normal);
        assert_eq!(c.mode(), Mode::Normal);
    }
}
