//! One partition group of a symmetric m-way hash join.
//!
//! A partition group holds, for **one partition ID**, the tuples of
//! *every* input stream, each side hash-indexed on its join column. This
//! is the paper's adaptation unit (§2, Figure 3(b)): grouping all inputs'
//! partitions together keeps joins local to one machine after relocation
//! and lets whole groups spill without timestamp bookkeeping — all
//! results among co-resident tuples are produced symmetrically at
//! insertion time, so a spilled group owes nothing internally.
//!
//! Insertion implements the symmetric hash join step: probe the other
//! streams' indexes with the new tuple's join key, emit the full
//! cartesian combination of matches, then index the tuple.

use dcape_common::error::{DcapeError, Result};
use dcape_common::hash::{fx_hash, FxHashMap};
use dcape_common::ids::PartitionId;
use dcape_common::mem::HeapSize;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::Tuple;
use dcape_common::value::Value;
use dcape_storage::SpilledGroup;
use std::sync::Arc;

use crate::probe::{ProbeSpans, SpanList, INLINE_STREAMS};
use crate::sink::ResultSink;
use crate::state::productivity::DecayState;

/// Estimated per-tuple bookkeeping bytes beyond the tuple itself
/// (vector slot + hash-index entry share).
pub const PER_TUPLE_OVERHEAD: usize = 24;

/// A join key carrying its precomputed [`fx_hash`].
///
/// Inserting one tuple into an m-way join probes m-1 indexes plus its own:
/// hashing the full `Value` (a text key walks every byte) once instead of
/// m times is a measurable hot-path win. `Hash` forwards only the cached
/// hash; `Eq` still compares the real key, so buckets stay exact.
#[derive(Debug, Clone)]
struct HashedKey {
    hash: u64,
    key: Value,
}

impl HashedKey {
    #[inline]
    fn new(key: Value) -> Self {
        let hash = fx_hash(&key);
        HashedKey { hash, key }
    }
}

impl PartialEq for HashedKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.key == other.key
    }
}

impl Eq for HashedKey {}

impl std::hash::Hash for HashedKey {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[derive(Debug)]
struct StreamPartition {
    tuples: Vec<Tuple>,
    /// join key (with precomputed hash) -> positions in `tuples`.
    index: FxHashMap<HashedKey, Vec<u32>>,
    /// True while `tuples` is ts-nondecreasing in storage order — then
    /// every match-position list is too, which unlocks binary-search
    /// window pruning in [`ProbeSpans::count_valid`]. Live streams
    /// arrive in timestamp order so this normally stays `true`;
    /// replayed or merged state may clear it, which only costs the
    /// pruning shortcut, never correctness.
    ts_sorted: bool,
}

impl Default for StreamPartition {
    fn default() -> Self {
        StreamPartition {
            tuples: Vec::new(),
            index: FxHashMap::default(),
            ts_sorted: true,
        }
    }
}

impl StreamPartition {
    fn insert(&mut self, key: HashedKey, tuple: Tuple) {
        if let Some(last) = self.tuples.last() {
            self.ts_sorted &= tuple.ts() >= last.ts();
        }
        let pos = self.tuples.len() as u32;
        self.tuples.push(tuple);
        self.index.entry(key).or_default().push(pos);
    }

    fn matches(&self, key: &HashedKey) -> &[u32] {
        self.index.get(key).map_or(&[], Vec::as_slice)
    }
}

/// In-memory join state for one partition ID across all input streams.
#[derive(Debug)]
pub struct PartitionGroup {
    pid: PartitionId,
    streams: Vec<StreamPartition>,
    /// Shared across all groups of one operator — creating a group is
    /// an `Arc` bump, not a `Vec` clone.
    join_columns: Arc<[usize]>,
    window: Option<VirtualDuration>,
    bytes: usize,
    output_count: u64,
    decay: DecayState,
}

impl PartitionGroup {
    /// New empty group. `join_columns[s]` is the join-column index of
    /// stream `s`; `window` enables sliding-window semantics.
    pub fn new(
        pid: PartitionId,
        join_columns: impl Into<Arc<[usize]>>,
        window: Option<VirtualDuration>,
    ) -> Self {
        let join_columns = join_columns.into();
        let n = join_columns.len();
        PartitionGroup {
            pid,
            streams: (0..n).map(|_| StreamPartition::default()).collect(),
            join_columns,
            window,
            bytes: 0,
            output_count: 0,
            decay: DecayState::default(),
        }
    }

    /// Fold the current sampling window into the group's decayed
    /// productivity estimate (used with
    /// [`ProductivityEstimator::Decaying`](crate::state::productivity::ProductivityEstimator)).
    pub fn close_productivity_window(&mut self, alpha: f64) {
        self.decay.close_window(alpha, self.bytes);
    }

    /// The decayed productivity estimate, if any window has closed yet.
    pub fn decayed_productivity(&self) -> Option<f64> {
        self.decay.initialized.then_some(self.decay.ewma)
    }

    /// The group's partition ID.
    pub fn pid(&self) -> PartitionId {
        self.pid
    }

    /// Accounted state bytes (`P_size`).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Results generated from this group so far (`P_output`).
    pub fn output_count(&self) -> u64 {
        self.output_count
    }

    /// The paper's productivity metric `P_output / P_size`.
    pub fn productivity(&self) -> f64 {
        self.output_count as f64 / self.bytes.max(1) as f64
    }

    /// Total tuples across all streams.
    pub fn tuple_count(&self) -> usize {
        self.streams.iter().map(|s| s.tuples.len()).sum()
    }

    /// True if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.streams.iter().all(|s| s.tuples.is_empty())
    }

    /// Symmetric-hash-join step: emit all new results formed with
    /// `tuple` (one per combination of matching tuples in every other
    /// stream), then store and index the tuple. Returns the number of
    /// results emitted and the bytes newly accounted.
    ///
    /// The whole probe product reaches the sink as **one**
    /// [`ResultSink::emit_product`] call over borrowed span lists — no
    /// per-insert allocation (the span array lives on the stack for up
    /// to [`INLINE_STREAMS`] streams) and no per-combination virtual
    /// dispatch for count-only sinks.
    pub fn insert(&mut self, tuple: Tuple, sink: &mut dyn ResultSink) -> Result<(u64, usize)> {
        let s = tuple.stream().index();
        if s >= self.streams.len() {
            return Err(DcapeError::state(format!(
                "stream {} out of range for {}-way join",
                tuple.stream(),
                self.streams.len()
            )));
        }
        let key = HashedKey::new(
            tuple
                .get(self.join_columns[s])
                .ok_or_else(|| DcapeError::state("tuple lacks join column"))?
                .clone(),
        );

        let m = self.streams.len();
        let emitted = if m >= 2 {
            if m <= INLINE_STREAMS {
                let mut lists = [SpanList::One(&tuple); INLINE_STREAMS];
                self.probe(s, &key, &mut lists[..m], sink)
            } else {
                let mut lists = vec![SpanList::One(&tuple); m];
                self.probe(s, &key, &mut lists, sink)
            }
        } else {
            0
        };

        let added = tuple.heap_size() + PER_TUPLE_OVERHEAD;
        self.streams[s].insert(key, tuple);
        self.bytes += added;
        self.output_count += emitted;
        self.decay.window_output += emitted;
        Ok((emitted, added))
    }

    /// Probe every stream other than `s` (whose slot in `lists` already
    /// holds the probing tuple) and deliver the product. Bails early on
    /// any empty side. The span lists borrow the stream state directly;
    /// all borrows end before the caller stores the tuple.
    fn probe<'a>(
        &'a self,
        s: usize,
        key: &HashedKey,
        lists: &mut [SpanList<'a>],
        sink: &mut dyn ResultSink,
    ) -> u64 {
        let mut ts_sorted = true;
        for (i, sp) in self.streams.iter().enumerate() {
            if i == s {
                continue;
            }
            let positions = sp.matches(key);
            if positions.is_empty() {
                return 0;
            }
            lists[i] = SpanList::Indexed {
                tuples: &sp.tuples,
                positions,
            };
            ts_sorted &= sp.ts_sorted;
        }
        sink.emit_product(&ProbeSpans::new(lists, self.window, ts_sorted))
    }

    /// Drop every tuple whose window has fully expired at the purge
    /// `horizon` (i.e. it can no longer join with any arrival carrying
    /// `ts >= horizon`), rebuilding the per-stream indexes. Callers
    /// pass a watermark-driven horizon — never ahead of the oldest
    /// tuple still in flight — so expiry is judged against data
    /// progress, not the wall clock. Returns the accounted bytes
    /// freed. No-op for unwindowed groups.
    pub fn purge_expired(&mut self, horizon: VirtualTime) -> usize {
        let Some(window) = self.window else {
            return 0;
        };
        let cutoff =
            VirtualTime::from_millis(horizon.as_millis().saturating_sub(window.as_millis()));
        let mut freed = 0usize;
        for (stream_index, sp) in self.streams.iter_mut().enumerate() {
            if sp.tuples.iter().all(|t| t.ts() >= cutoff) {
                continue;
            }
            let old = std::mem::take(&mut sp.tuples);
            sp.index.clear();
            // Re-inserting recomputes sortedness from scratch, so a
            // group that went unsorted can recover the pruning shortcut
            // once the offending tuples expire.
            sp.ts_sorted = true;
            let column = self.join_columns[stream_index];
            for t in old {
                if t.ts() >= cutoff {
                    let key = HashedKey::new(t.get(column).expect("validated at insert").clone());
                    sp.insert(key, t);
                } else {
                    freed += t.heap_size() + PER_TUPLE_OVERHEAD;
                }
            }
        }
        self.bytes -= freed;
        freed
    }

    /// Consume the group into a serializable snapshot plus its output
    /// count (relocation carries the count; spill discards it because a
    /// fresh group restarts its productivity history).
    pub fn into_snapshot(self) -> (SpilledGroup, u64) {
        let per_stream = self.streams.into_iter().map(|s| s.tuples).collect();
        (
            SpilledGroup {
                partition: self.pid,
                per_stream,
            },
            self.output_count,
        )
    }

    /// Rebuild a group from a snapshot (relocation receive / tests),
    /// restoring indexes, byte accounting, and the carried output count.
    pub fn from_snapshot(
        snapshot: SpilledGroup,
        join_columns: impl Into<Arc<[usize]>>,
        window: Option<VirtualDuration>,
        output_count: u64,
    ) -> Result<Self> {
        let join_columns = join_columns.into();
        if snapshot.per_stream.len() != join_columns.len() {
            return Err(DcapeError::state(format!(
                "snapshot has {} streams, join configured for {}",
                snapshot.per_stream.len(),
                join_columns.len()
            )));
        }
        let mut group = PartitionGroup::new(snapshot.partition, join_columns, window);
        for (s, tuples) in snapshot.per_stream.into_iter().enumerate() {
            for t in tuples {
                let key = HashedKey::new(
                    t.get(group.join_columns[s])
                        .ok_or_else(|| DcapeError::state("snapshot tuple lacks join column"))?
                        .clone(),
                );
                group.bytes += t.heap_size() + PER_TUPLE_OVERHEAD;
                group.streams[s].insert(key, t);
            }
        }
        group.output_count = output_count;
        Ok(group)
    }

    /// Clone the group's content as a snapshot without consuming it
    /// (used by tests and the drift checker).
    pub fn snapshot(&self) -> SpilledGroup {
        SpilledGroup {
            partition: self.pid,
            per_stream: self.streams.iter().map(|s| s.tuples.clone()).collect(),
        }
    }

    /// Recompute accounted bytes from scratch (drift detection).
    pub fn recompute_bytes(&self) -> usize {
        self.streams
            .iter()
            .flat_map(|s| s.tuples.iter())
            .map(|t| t.heap_size() + PER_TUPLE_OVERHEAD)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectingSink, CountingSink};
    use dcape_common::ids::StreamId;
    use dcape_common::time::VirtualTime;
    use dcape_common::tuple::TupleBuilder;

    fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
        TupleBuilder::new(StreamId(stream))
            .seq(seq)
            .ts(VirtualTime::from_millis(seq))
            .value(key)
            .build()
    }

    fn group3() -> PartitionGroup {
        PartitionGroup::new(PartitionId(0), vec![0, 0, 0], None)
    }

    #[test]
    fn three_way_join_produces_cartesian_results() {
        let mut g = group3();
        let mut sink = CollectingSink::new();
        // 2 tuples on stream 0, 2 on stream 1, then 1 on stream 2: the
        // stream-2 insert sees 2x2 combinations.
        g.insert(tpl(0, 0, 7), &mut sink).unwrap();
        g.insert(tpl(0, 1, 7), &mut sink).unwrap();
        g.insert(tpl(1, 0, 7), &mut sink).unwrap();
        g.insert(tpl(1, 1, 7), &mut sink).unwrap();
        assert!(sink.is_empty(), "no stream-2 tuple yet, no results");
        let (n, _) = g.insert(tpl(2, 0, 7), &mut sink).unwrap();
        assert_eq!(n, 4);
        assert_eq!(sink.len(), 4);
        assert_eq!(g.output_count(), 4);
        // Every result has one tuple per stream, in stream order.
        for r in sink.results() {
            assert_eq!(r.len(), 3);
            for (s, t) in r.iter().enumerate() {
                assert_eq!(t.stream().index(), s);
            }
        }
    }

    #[test]
    fn results_match_multiplicity_cube() {
        // f tuples per stream with one shared key => f^3 total results.
        let f = 4u64;
        let mut g = group3();
        let mut sink = CountingSink::new();
        for rep in 0..f {
            for s in 0..3u8 {
                g.insert(tpl(s, rep, 1), &mut sink).unwrap();
            }
        }
        assert_eq!(sink.count(), f * f * f);
        assert_eq!(g.output_count(), f * f * f);
        assert_eq!(g.tuple_count(), (3 * f) as usize);
    }

    #[test]
    fn different_keys_do_not_join() {
        let mut g = group3();
        let mut sink = CountingSink::new();
        g.insert(tpl(0, 0, 1), &mut sink).unwrap();
        g.insert(tpl(1, 0, 2), &mut sink).unwrap();
        g.insert(tpl(2, 0, 3), &mut sink).unwrap();
        assert_eq!(sink.count(), 0);
        assert_eq!(g.productivity(), 0.0);
    }

    #[test]
    fn two_way_join_works() {
        let mut g = PartitionGroup::new(PartitionId(1), vec![0, 0], None);
        let mut sink = CountingSink::new();
        g.insert(tpl(0, 0, 5), &mut sink).unwrap();
        g.insert(tpl(1, 0, 5), &mut sink).unwrap();
        g.insert(tpl(1, 1, 5), &mut sink).unwrap();
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn bytes_accounting_matches_recompute() {
        let mut g = group3();
        let mut sink = CountingSink::new();
        for s in 0..3u8 {
            for i in 0..10 {
                g.insert(tpl(s, i, (i % 3) as i64), &mut sink).unwrap();
            }
        }
        assert_eq!(g.bytes(), g.recompute_bytes());
        assert!(g.bytes() > 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_state_and_stats() {
        let mut g = group3();
        let mut sink = CountingSink::new();
        for s in 0..3u8 {
            for i in 0..5 {
                g.insert(tpl(s, i, 1), &mut sink).unwrap();
            }
        }
        let bytes_before = g.bytes();
        let output_before = g.output_count();
        let (snap, carried) = g.into_snapshot();
        assert_eq!(carried, output_before);
        let g2 = PartitionGroup::from_snapshot(snap, vec![0, 0, 0], None, carried).unwrap();
        assert_eq!(g2.bytes(), bytes_before);
        assert_eq!(g2.output_count(), output_before);
        // Restored group continues joining correctly.
        let mut g2 = g2;
        let mut sink2 = CountingSink::new();
        g2.insert(tpl(0, 99, 1), &mut sink2).unwrap();
        // 5 on stream 1 x 5 on stream 2.
        assert_eq!(sink2.count(), 25);
    }

    #[test]
    fn from_snapshot_validates_stream_count() {
        let snap = SpilledGroup::empty(PartitionId(0), 2);
        assert!(PartitionGroup::from_snapshot(snap, vec![0, 0, 0], None, 0).is_err());
    }

    #[test]
    fn insert_rejects_out_of_range_stream() {
        let mut g = group3();
        let mut sink = CountingSink::new();
        assert!(g.insert(tpl(7, 0, 1), &mut sink).is_err());
    }

    #[test]
    fn insert_rejects_missing_join_column() {
        let mut g = PartitionGroup::new(PartitionId(0), vec![2, 2, 2], None);
        let mut sink = CountingSink::new();
        // Tuple has only one column; join column 2 is missing.
        assert!(g.insert(tpl(0, 0, 1), &mut sink).is_err());
    }

    #[test]
    fn windowed_counting_matches_collecting_oracle() {
        // Same inserts into two groups: the CountingSink takes the
        // product/window-pruned path, the CollectingSink enumerates.
        // Timestamps arrive in order (the live-stream case).
        let window = Some(VirtualDuration::from_millis(3));
        let mut fast = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window);
        let mut slow = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window);
        let mut count = CountingSink::new();
        let mut collect = CollectingSink::new();
        for i in 0..24u64 {
            let t = tpl((i % 3) as u8, i, 1);
            let (nf, _) = fast.insert(t.clone(), &mut count).unwrap();
            let before = collect.len();
            let (ns, _) = slow.insert(t, &mut collect).unwrap();
            assert_eq!(nf, ns, "per-insert emitted counts diverge at {i}");
            assert_eq!(collect.len() - before, ns as usize);
        }
        assert_eq!(count.count(), collect.len() as u64);
        assert_eq!(fast.output_count(), slow.output_count());
        assert!(count.count() > 0);
    }

    #[test]
    fn out_of_order_arrivals_fall_back_and_stay_exact() {
        // Shuffled timestamps break the ts-sorted promise; the count
        // path must detect it and still match enumeration.
        let window = Some(VirtualDuration::from_millis(4));
        let mut fast = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window);
        let mut slow = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window);
        let mut count = CountingSink::new();
        let mut collect = CollectingSink::new();
        let ts_order = [9u64, 2, 14, 0, 7, 7, 3, 11, 1, 5, 13, 4];
        for (i, &ts) in ts_order.iter().enumerate() {
            let t = TupleBuilder::new(StreamId((i % 3) as u8))
                .seq(i as u64)
                .ts(VirtualTime::from_millis(ts))
                .value(1i64)
                .build();
            let (nf, _) = fast.insert(t.clone(), &mut count).unwrap();
            let (ns, _) = slow.insert(t, &mut collect).unwrap();
            assert_eq!(nf, ns, "per-insert emitted counts diverge at {i}");
        }
        assert_eq!(count.count(), collect.len() as u64);
        assert!(count.count() > 0);
    }

    #[test]
    fn purge_restores_sorted_flag() {
        let window = Some(VirtualDuration::from_millis(5));
        let mut g = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window);
        let mut sink = CountingSink::new();
        // An out-of-order early tuple, then in-order late ones.
        for (seq, ts) in [(0u64, 50u64), (1, 1), (2, 100), (3, 101)] {
            let t = TupleBuilder::new(StreamId(0))
                .seq(seq)
                .ts(VirtualTime::from_millis(ts))
                .value(1i64)
                .build();
            g.insert(t, &mut sink).unwrap();
        }
        assert!(!g.streams[0].ts_sorted);
        g.purge_expired(VirtualTime::from_millis(103));
        assert!(g.streams[0].ts_sorted, "rebuild recomputes sortedness");
        assert_eq!(g.streams[0].tuples.len(), 2);
    }

    #[test]
    fn productivity_reflects_output_per_byte() {
        let mut hot = group3();
        let mut cold = group3();
        let mut sink = CountingSink::new();
        for s in 0..3u8 {
            for i in 0..6 {
                hot.insert(tpl(s, i, 1), &mut sink).unwrap(); // all same key
                cold.insert(tpl(s, i, i as i64 * 3 + s as i64), &mut sink)
                    .unwrap(); // no joins
            }
        }
        assert!(hot.productivity() > cold.productivity());
        assert_eq!(cold.output_count(), 0);
    }
}
