//! One partition group of a symmetric m-way hash join.
//!
//! A partition group holds, for **one partition ID**, the tuples of
//! *every* input stream, each side hash-indexed on its join column. This
//! is the paper's adaptation unit (§2, Figure 3(b)): grouping all inputs'
//! partitions together keeps joins local to one machine after relocation
//! and lets whole groups spill without timestamp bookkeeping — all
//! results among co-resident tuples are produced symmetrically at
//! insertion time, so a spilled group owes nothing internally.
//!
//! Insertion implements the symmetric hash join step: probe the other
//! streams' indexes with the new tuple's join key, emit the full
//! cartesian combination of matches, then index the tuple.
//!
//! Two in-memory layouts implement that contract
//! ([`StateLayout`](crate::config::StateLayout)):
//!
//! * **Row** — `Vec<Tuple>` per stream, the original layout, kept as the
//!   equivalence reference;
//! * **Columnar** — struct-of-arrays per stream: contiguous timestamp,
//!   sequence, hash, and join-key columns plus one packed payload arena.
//!   The probe path touches only the columns (a count-only sink gets
//!   [`SpanList::TsOnly`] lists and never sees a row); rows are
//!   materialized from the arena only at the sink or spill boundary.

use dcape_common::error::{DcapeError, Result};
use dcape_common::hash::{fx_hash, FxHashMap};
use dcape_common::ids::{PartitionId, StreamId};
use dcape_common::mem::HeapSize;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::Tuple;
use dcape_common::value::Value;
use dcape_storage::codec::{
    decode_value, encode_value, encoded_value_len, get_varint, put_varint, varint_len,
};
use dcape_storage::SpilledGroup;
use std::sync::Arc;

use crate::config::StateLayout;
use crate::probe::{ProbeSpans, SpanList, INLINE_STREAMS};
use crate::sink::ResultSink;
use crate::state::productivity::DecayState;

/// Estimated per-tuple bookkeeping bytes beyond the tuple itself
/// (vector slot + hash-index entry share).
pub const PER_TUPLE_OVERHEAD: usize = 24;

/// A join key carrying its precomputed [`fx_hash`].
///
/// Inserting one tuple into an m-way join probes m-1 indexes plus its own:
/// hashing the full `Value` (a text key walks every byte) once instead of
/// m times is a measurable hot-path win. `Hash` forwards only the cached
/// hash; `Eq` still compares the real key, so buckets stay exact.
#[derive(Debug, Clone)]
struct HashedKey {
    hash: u64,
    key: Value,
}

impl HashedKey {
    #[inline]
    fn new(key: Value) -> Self {
        let hash = fx_hash(&key);
        HashedKey { hash, key }
    }
}

impl PartialEq for HashedKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.key == other.key
    }
}

impl Eq for HashedKey {}

impl std::hash::Hash for HashedKey {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[derive(Debug)]
struct StreamPartition {
    tuples: Vec<Tuple>,
    /// join key (with precomputed hash) -> positions in `tuples`.
    index: FxHashMap<HashedKey, Vec<u32>>,
    /// True while `tuples` is ts-nondecreasing in storage order — then
    /// every match-position list is too, which unlocks binary-search
    /// window pruning in [`ProbeSpans::count_valid`]. Live streams
    /// arrive in timestamp order so this normally stays `true`;
    /// replayed or merged state may clear it, which only costs the
    /// pruning shortcut, never correctness.
    ts_sorted: bool,
}

impl Default for StreamPartition {
    fn default() -> Self {
        StreamPartition {
            tuples: Vec::new(),
            index: FxHashMap::default(),
            ts_sorted: true,
        }
    }
}

impl StreamPartition {
    fn insert(&mut self, key: HashedKey, tuple: Tuple) {
        if let Some(last) = self.tuples.last() {
            self.ts_sorted &= tuple.ts() >= last.ts();
        }
        let pos = self.tuples.len() as u32;
        self.tuples.push(tuple);
        self.index.entry(key).or_default().push(pos);
    }

    fn matches(&self, key: &HashedKey) -> &[u32] {
        self.index.get(key).map_or(&[], Vec::as_slice)
    }
}

/// Per-row bookkeeping that is only read at materialization, purge, or
/// accounting time — packed into one vector so the insert hot path
/// touches a single cache line for all three fields (a dedicated
/// vector per field measurably hurt insert throughput under random
/// partition access).
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    /// Arrival sequence number.
    seq: u64,
    /// Accounted heap size captured at insert, so byte accounting is
    /// bit-identical to the row layout.
    acct: u64,
    /// End offset (exclusive) of the row's arena slice; the start is
    /// the previous row's `end` (0 for the first row).
    end: u32,
}

/// Struct-of-arrays state of one stream inside one partition group.
///
/// Row `i` is scattered across parallel stores: the dense timestamp
/// column `ts[i]` (probes window-filter by binary search over it, and
/// count-only sinks read it directly through [`SpanList::TsOnly`]),
/// the packed [`RowMeta`] record `meta[i]`, and the payload arena slice
/// `meta[i-1].end..meta[i].end` holding the codec-encoded column
/// values (arity varint + one [`encode_value`] per column). The join
/// key lives only in the `index` — purge compacts the stores in place
/// and remaps the index's positions, so no per-row key copy is ever
/// stored. `end` is `u32`: one stream partition's arena is capped at
/// 4 GiB, enforced *before* any result is emitted.
#[derive(Debug)]
struct ColumnarPartition {
    ts: Vec<VirtualTime>,
    meta: Vec<RowMeta>,
    /// Packed encoded payloads of all rows, in insertion order.
    arena: Vec<u8>,
    /// join key (with precomputed hash) -> positions in the columns.
    index: FxHashMap<HashedKey, Vec<u32>>,
    /// Same meaning as [`StreamPartition::ts_sorted`].
    ts_sorted: bool,
}

impl Default for ColumnarPartition {
    fn default() -> Self {
        ColumnarPartition {
            ts: Vec::new(),
            meta: Vec::new(),
            arena: Vec::new(),
            index: FxHashMap::default(),
            ts_sorted: true,
        }
    }
}

impl ColumnarPartition {
    fn len(&self) -> usize {
        self.meta.len()
    }

    /// Arena bytes one tuple's payload will occupy (exact; walks every
    /// value).
    fn payload_len(tuple: &Tuple) -> usize {
        varint_len(tuple.arity() as u64)
            + tuple.values().iter().map(encoded_value_len).sum::<usize>()
    }

    /// Reject an insert whose payload would push the arena past the
    /// `u32` offset range. Checked before the probe so no results are
    /// emitted for a tuple that is then refused. The fast path is an
    /// O(1) over-estimate from the tuple's cached heap size (which
    /// bounds every Text/Blob content length; fixed-width values encode
    /// in ≤ 11 bytes each); only near the 4 GiB edge does the exact
    /// per-value walk run.
    fn check_capacity(&self, tuple: &Tuple) -> Result<()> {
        let bound = 10 + 11 * tuple.arity() + tuple.heap_size();
        if self.arena.len() + bound > u32::MAX as usize
            && self.arena.len() + Self::payload_len(tuple) > u32::MAX as usize
        {
            return Err(DcapeError::state(
                "columnar arena exceeds 4 GiB for one stream partition",
            ));
        }
        Ok(())
    }

    /// Append one row. Infallible: callers run [`check_capacity`]
    /// first.
    fn insert(&mut self, key: HashedKey, tuple: &Tuple) {
        if let Some(&last) = self.ts.last() {
            self.ts_sorted &= tuple.ts() >= last;
        }
        let pos = self.meta.len() as u32;
        self.ts.push(tuple.ts());
        put_varint(&mut self.arena, tuple.arity() as u64);
        for v in tuple.values() {
            encode_value(&mut self.arena, v);
        }
        self.meta.push(RowMeta {
            seq: tuple.seq(),
            acct: tuple.heap_size() as u64,
            end: self.arena.len() as u32,
        });
        self.index.entry(key).or_default().push(pos);
    }

    fn matches(&self, key: &HashedKey) -> &[u32] {
        self.index.get(key).map_or(&[], Vec::as_slice)
    }

    /// Rebuild row `i` from its columns and arena slice. The arena is
    /// self-encoded at insert, so decode failures are impossible.
    fn materialize(&self, stream: StreamId, i: usize) -> Tuple {
        let start = if i == 0 {
            0
        } else {
            self.meta[i - 1].end as usize
        };
        let mut buf = &self.arena[start..self.meta[i].end as usize];
        let arity = get_varint(&mut buf).expect("arena: self-encoded") as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(decode_value(&mut buf).expect("arena: self-encoded"));
        }
        Tuple::new(stream, self.meta[i].seq, self.ts[i], values)
    }

    /// Drop all rows with `ts < cutoff`, compacting every column and the
    /// arena **in place** and remapping the index's positions through a
    /// survivor table — no re-hashing, no key clones, no row
    /// materialization. Returns the accounted bytes freed.
    fn purge(&mut self, cutoff: VirtualTime) -> usize {
        if self.ts.iter().all(|&t| t >= cutoff) {
            return 0;
        }
        const DEAD: u32 = u32::MAX;
        let mut remap = vec![DEAD; self.len()];
        let mut freed = 0usize;
        let mut kept = 0usize;
        let mut arena_w = 0usize;
        let mut prev_end = 0usize;
        // Survivors keep their relative order, so sortedness is
        // recomputed over the kept subsequence — a partition that went
        // unsorted recovers the pruning shortcut once the offending
        // rows expire.
        let mut sorted = true;
        let mut prev_ts = VirtualTime::from_millis(0);
        for (i, slot) in remap.iter_mut().enumerate() {
            let start = prev_end;
            let end = self.meta[i].end as usize;
            prev_end = end;
            if self.ts[i] < cutoff {
                freed += self.meta[i].acct as usize + PER_TUPLE_OVERHEAD;
                continue;
            }
            *slot = kept as u32;
            self.ts[kept] = self.ts[i];
            self.arena.copy_within(start..end, arena_w);
            arena_w += end - start;
            self.meta[kept] = RowMeta {
                end: arena_w as u32,
                ..self.meta[i]
            };
            sorted &= kept == 0 || self.ts[kept] >= prev_ts;
            prev_ts = self.ts[kept];
            kept += 1;
        }
        self.ts.truncate(kept);
        self.meta.truncate(kept);
        self.arena.truncate(arena_w);
        self.ts_sorted = sorted;
        self.index.retain(|_, positions| {
            positions.retain_mut(|p| {
                let n = remap[*p as usize];
                *p = n;
                n != DEAD
            });
            !positions.is_empty()
        });
        freed
    }
}

/// The layout-selected per-stream state of one group.
#[derive(Debug)]
enum StateStore {
    Row(Vec<StreamPartition>),
    Columnar(Vec<ColumnarPartition>),
}

/// In-memory join state for one partition ID across all input streams.
#[derive(Debug)]
pub struct PartitionGroup {
    pid: PartitionId,
    state: StateStore,
    /// Shared across all groups of one operator — creating a group is
    /// an `Arc` bump, not a `Vec` clone.
    join_columns: Arc<[usize]>,
    window: Option<VirtualDuration>,
    bytes: usize,
    output_count: u64,
    decay: DecayState,
    /// Reused per-stream row-materialization buffers for columnar
    /// probes feeding row-wanting sinks (no per-probe allocation once
    /// warm).
    scratch: Vec<Vec<Tuple>>,
    /// Reused key buffer for [`insert_run`](Self::insert_run).
    key_scratch: Vec<HashedKey>,
}

impl PartitionGroup {
    /// New empty group. `join_columns[s]` is the join-column index of
    /// stream `s`; `window` enables sliding-window semantics; `layout`
    /// selects the in-memory representation.
    pub fn new(
        pid: PartitionId,
        join_columns: impl Into<Arc<[usize]>>,
        window: Option<VirtualDuration>,
        layout: StateLayout,
    ) -> Self {
        let join_columns = join_columns.into();
        let n = join_columns.len();
        let state = match layout {
            StateLayout::Row => {
                StateStore::Row((0..n).map(|_| StreamPartition::default()).collect())
            }
            StateLayout::Columnar => {
                StateStore::Columnar((0..n).map(|_| ColumnarPartition::default()).collect())
            }
        };
        PartitionGroup {
            pid,
            state,
            join_columns,
            window,
            bytes: 0,
            output_count: 0,
            decay: DecayState::default(),
            scratch: Vec::new(),
            key_scratch: Vec::new(),
        }
    }

    /// Fold the current sampling window into the group's decayed
    /// productivity estimate (used with
    /// [`ProductivityEstimator::Decaying`](crate::state::productivity::ProductivityEstimator)).
    pub fn close_productivity_window(&mut self, alpha: f64) {
        self.decay.close_window(alpha, self.bytes);
    }

    /// The decayed productivity estimate, if any window has closed yet.
    pub fn decayed_productivity(&self) -> Option<f64> {
        self.decay.initialized.then_some(self.decay.ewma)
    }

    /// The group's partition ID.
    pub fn pid(&self) -> PartitionId {
        self.pid
    }

    /// Accounted state bytes (`P_size`).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Results generated from this group so far (`P_output`).
    pub fn output_count(&self) -> u64 {
        self.output_count
    }

    /// The paper's productivity metric `P_output / P_size`.
    pub fn productivity(&self) -> f64 {
        self.output_count as f64 / self.bytes.max(1) as f64
    }

    /// The group's in-memory layout.
    pub fn layout(&self) -> StateLayout {
        match self.state {
            StateStore::Row(_) => StateLayout::Row,
            StateStore::Columnar(_) => StateLayout::Columnar,
        }
    }

    /// Total tuples across all streams.
    pub fn tuple_count(&self) -> usize {
        match &self.state {
            StateStore::Row(streams) => streams.iter().map(|s| s.tuples.len()).sum(),
            StateStore::Columnar(cols) => cols.iter().map(ColumnarPartition::len).sum(),
        }
    }

    /// True if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.tuple_count() == 0
    }

    /// Symmetric-hash-join step: emit all new results formed with
    /// `tuple` (one per combination of matching tuples in every other
    /// stream), then store and index the tuple. Returns the number of
    /// results emitted and the bytes newly accounted.
    ///
    /// The whole probe product reaches the sink as **one**
    /// [`ResultSink::emit_product`] call over borrowed span lists — no
    /// per-insert allocation (the span array lives on the stack for up
    /// to [`INLINE_STREAMS`] streams) and no per-combination virtual
    /// dispatch for count-only sinks. Under the columnar layout a sink
    /// answering [`ResultSink::wants_rows`]` == false` is served
    /// [`SpanList::TsOnly`] lists straight off the timestamp columns —
    /// no row is materialized at all.
    pub fn insert(&mut self, tuple: Tuple, sink: &mut dyn ResultSink) -> Result<(u64, usize)> {
        let key = self.key_of(&tuple)?;
        self.insert_hashed(key, tuple, sink)
    }

    /// Validate stream range and join-column presence, returning the
    /// hashed join key.
    fn key_of(&self, tuple: &Tuple) -> Result<HashedKey> {
        let s = tuple.stream().index();
        if s >= self.join_columns.len() {
            return Err(DcapeError::state(format!(
                "stream {} out of range for {}-way join",
                tuple.stream(),
                self.join_columns.len()
            )));
        }
        Ok(HashedKey::new(
            tuple
                .get(self.join_columns[s])
                .ok_or_else(|| DcapeError::state("tuple lacks join column"))?
                .clone(),
        ))
    }

    /// Insert a whole same-partition run of tuples, hashing keys in one
    /// batched pass before probing (the vectorized entry used by
    /// [`MJoinOperator::process_batch`](crate::operators::mjoin::MJoinOperator::process_batch)).
    ///
    /// Drains `run` (leaving it empty for reuse) and returns
    /// `(results_emitted, bytes_added, status)`. On an invalid tuple the
    /// valid prefix is inserted — and accounted in the first two fields —
    /// the remainder is dropped, and `status` carries the error: exactly
    /// the per-tuple path's semantics when a batch aborts mid-run.
    pub fn insert_run(
        &mut self,
        run: &mut Vec<Tuple>,
        sink: &mut dyn ResultSink,
    ) -> (u64, usize, Result<()>) {
        let mut keys = std::mem::take(&mut self.key_scratch);
        keys.clear();
        let mut status = Ok(());
        for t in run.iter() {
            match self.key_of(t) {
                Ok(k) => keys.push(k),
                Err(e) => {
                    status = Err(e);
                    break;
                }
            }
        }
        let valid = keys.len();
        let mut emitted_total = 0u64;
        let mut added_total = 0usize;
        for (tuple, key) in run.drain(..).zip(keys.drain(..)).take(valid) {
            match self.insert_hashed(key, tuple, sink) {
                Ok((emitted, added)) => {
                    emitted_total += emitted;
                    added_total += added;
                }
                Err(e) => {
                    status = Err(e);
                    break;
                }
            }
        }
        self.key_scratch = keys;
        (emitted_total, added_total, status)
    }

    fn insert_hashed(
        &mut self,
        key: HashedKey,
        tuple: Tuple,
        sink: &mut dyn ResultSink,
    ) -> Result<(u64, usize)> {
        let s = tuple.stream().index();
        if let StateStore::Columnar(cols) = &self.state {
            cols[s].check_capacity(&tuple)?;
        }
        let m = self.join_columns.len();
        let emitted = if m >= 2 {
            match self.state {
                StateStore::Columnar(_) => self.probe_columnar(s, &key, &tuple, sink),
                StateStore::Row(_) => {
                    if m <= INLINE_STREAMS {
                        let mut lists = [SpanList::One(&tuple); INLINE_STREAMS];
                        self.probe_row(s, &key, &mut lists[..m], sink)
                    } else {
                        let mut lists = vec![SpanList::One(&tuple); m];
                        self.probe_row(s, &key, &mut lists, sink)
                    }
                }
            }
        } else {
            0
        };

        let added = tuple.heap_size() + PER_TUPLE_OVERHEAD;
        match &mut self.state {
            StateStore::Row(streams) => streams[s].insert(key, tuple),
            StateStore::Columnar(cols) => cols[s].insert(key, &tuple),
        }
        self.bytes += added;
        self.output_count += emitted;
        self.decay.window_output += emitted;
        Ok((emitted, added))
    }

    /// Probe every stream other than `s` (whose slot in `lists` already
    /// holds the probing tuple) and deliver the product. Bails early on
    /// any empty side. The span lists borrow the stream state directly;
    /// all borrows end before the caller stores the tuple.
    fn probe_row<'a>(
        &'a self,
        s: usize,
        key: &HashedKey,
        lists: &mut [SpanList<'a>],
        sink: &mut dyn ResultSink,
    ) -> u64 {
        let StateStore::Row(streams) = &self.state else {
            unreachable!("probe_row on columnar state");
        };
        let mut ts_sorted = true;
        for (i, sp) in streams.iter().enumerate() {
            if i == s {
                continue;
            }
            let positions = sp.matches(key);
            if positions.is_empty() {
                return 0;
            }
            lists[i] = SpanList::Indexed {
                tuples: &sp.tuples,
                positions,
            };
            ts_sorted &= sp.ts_sorted;
        }
        sink.emit_product(&ProbeSpans::new(lists, self.window, ts_sorted))
    }

    /// Columnar probe entry: splits `self`'s fields so the span lists
    /// can borrow the columns and (for row-wanting sinks) the reused
    /// scratch buffers simultaneously.
    fn probe_columnar(
        &mut self,
        s: usize,
        key: &HashedKey,
        tuple: &Tuple,
        sink: &mut dyn ResultSink,
    ) -> u64 {
        let m = self.join_columns.len();
        let window = self.window;
        let PartitionGroup { state, scratch, .. } = self;
        let StateStore::Columnar(cols) = &*state else {
            unreachable!("probe_columnar on row state");
        };
        if m <= INLINE_STREAMS {
            let mut lists = [SpanList::One(tuple); INLINE_STREAMS];
            let mut pos: [&[u32]; INLINE_STREAMS] = [&[]; INLINE_STREAMS];
            Self::probe_columnar_into(
                cols,
                scratch,
                window,
                s,
                key,
                &mut pos[..m],
                &mut lists[..m],
                sink,
            )
        } else {
            let mut lists = vec![SpanList::One(tuple); m];
            let mut pos: Vec<&[u32]> = vec![&[]; m];
            Self::probe_columnar_into(cols, scratch, window, s, key, &mut pos, &mut lists, sink)
        }
    }

    /// Vectorized columnar probe. Pass A checks every other stream for a
    /// non-empty match list (hash computed once, one lookup per stream —
    /// the position slices are kept for pass B) and bails before
    /// touching any payload. Pass B then builds the span lists:
    /// timestamp-only views for count-only sinks, materialized row
    /// slices (into the reused scratch buffers) for sinks that
    /// enumerate.
    #[allow(clippy::too_many_arguments)]
    fn probe_columnar_into<'a>(
        cols: &'a [ColumnarPartition],
        scratch: &'a mut Vec<Vec<Tuple>>,
        window: Option<VirtualDuration>,
        s: usize,
        key: &HashedKey,
        pos: &mut [&'a [u32]],
        lists: &mut [SpanList<'a>],
        sink: &mut dyn ResultSink,
    ) -> u64 {
        let mut ts_sorted = true;
        for (i, cp) in cols.iter().enumerate() {
            if i == s {
                continue;
            }
            let p = cp.matches(key);
            if p.is_empty() {
                return 0;
            }
            pos[i] = p;
            ts_sorted &= cp.ts_sorted;
        }
        if sink.wants_rows() {
            if scratch.len() < cols.len() {
                scratch.resize_with(cols.len(), Vec::new);
            }
            for (i, cp) in cols.iter().enumerate() {
                if i == s {
                    continue;
                }
                let buf = &mut scratch[i];
                buf.clear();
                buf.extend(
                    pos[i]
                        .iter()
                        .map(|&p| cp.materialize(StreamId(i as u8), p as usize)),
                );
            }
            let scratch: &'a [Vec<Tuple>] = scratch;
            for (i, rows) in scratch.iter().enumerate().take(cols.len()) {
                if i == s {
                    continue;
                }
                lists[i] = SpanList::Slice(rows);
            }
        } else {
            for (i, cp) in cols.iter().enumerate() {
                if i == s {
                    continue;
                }
                lists[i] = SpanList::TsOnly {
                    ts: &cp.ts,
                    positions: pos[i],
                };
            }
        }
        sink.emit_product(&ProbeSpans::new(lists, window, ts_sorted))
    }

    /// Drop every tuple whose window has fully expired at the purge
    /// `horizon` (i.e. it can no longer join with any arrival carrying
    /// `ts >= horizon`), rebuilding the per-stream indexes. Callers
    /// pass a watermark-driven horizon — never ahead of the oldest
    /// tuple still in flight — so expiry is judged against data
    /// progress, not the wall clock. Returns the accounted bytes
    /// freed. No-op for unwindowed groups.
    pub fn purge_expired(&mut self, horizon: VirtualTime) -> usize {
        let Some(window) = self.window else {
            return 0;
        };
        let cutoff =
            VirtualTime::from_millis(horizon.as_millis().saturating_sub(window.as_millis()));
        let mut freed = 0usize;
        match &mut self.state {
            StateStore::Row(streams) => {
                for (stream_index, sp) in streams.iter_mut().enumerate() {
                    if sp.tuples.iter().all(|t| t.ts() >= cutoff) {
                        continue;
                    }
                    let old = std::mem::take(&mut sp.tuples);
                    sp.index.clear();
                    // Re-inserting recomputes sortedness from scratch, so a
                    // group that went unsorted can recover the pruning
                    // shortcut once the offending tuples expire.
                    sp.ts_sorted = true;
                    let column = self.join_columns[stream_index];
                    for t in old {
                        if t.ts() >= cutoff {
                            let key =
                                HashedKey::new(t.get(column).expect("validated at insert").clone());
                            sp.insert(key, t);
                        } else {
                            freed += t.heap_size() + PER_TUPLE_OVERHEAD;
                        }
                    }
                }
            }
            StateStore::Columnar(cols) => {
                for cp in cols.iter_mut() {
                    freed += cp.purge(cutoff);
                }
            }
        }
        self.bytes -= freed;
        freed
    }

    /// Consume the group into a serializable snapshot plus its output
    /// count (relocation carries the count; spill discards it because a
    /// fresh group restarts its productivity history). Columnar state is
    /// materialized in insertion order, so both layouts snapshot to the
    /// same rows in the same order.
    pub fn into_snapshot(self) -> (SpilledGroup, u64) {
        let per_stream = match self.state {
            StateStore::Row(streams) => streams.into_iter().map(|s| s.tuples).collect(),
            StateStore::Columnar(cols) => cols
                .iter()
                .enumerate()
                .map(|(s, cp)| {
                    (0..cp.len())
                        .map(|i| cp.materialize(StreamId(s as u8), i))
                        .collect()
                })
                .collect(),
        };
        (
            SpilledGroup {
                partition: self.pid,
                per_stream,
            },
            self.output_count,
        )
    }

    /// Rebuild a group from a snapshot (relocation receive / tests),
    /// restoring indexes, byte accounting, and the carried output count.
    pub fn from_snapshot(
        snapshot: SpilledGroup,
        join_columns: impl Into<Arc<[usize]>>,
        window: Option<VirtualDuration>,
        output_count: u64,
        layout: StateLayout,
    ) -> Result<Self> {
        let join_columns = join_columns.into();
        if snapshot.per_stream.len() != join_columns.len() {
            return Err(DcapeError::state(format!(
                "snapshot has {} streams, join configured for {}",
                snapshot.per_stream.len(),
                join_columns.len()
            )));
        }
        let mut group = PartitionGroup::new(snapshot.partition, join_columns, window, layout);
        for (s, tuples) in snapshot.per_stream.into_iter().enumerate() {
            for t in tuples {
                let key = HashedKey::new(
                    t.get(group.join_columns[s])
                        .ok_or_else(|| DcapeError::state("snapshot tuple lacks join column"))?
                        .clone(),
                );
                match &mut group.state {
                    StateStore::Row(streams) => {
                        group.bytes += t.heap_size() + PER_TUPLE_OVERHEAD;
                        streams[s].insert(key, t);
                    }
                    StateStore::Columnar(cols) => {
                        // Columnar state regenerates stream IDs from the
                        // slot index at materialization; a mismatched
                        // snapshot would silently relabel rows, so refuse
                        // it instead.
                        if t.stream().index() != s {
                            return Err(DcapeError::state(format!(
                                "snapshot slot {s} holds a tuple from stream {}",
                                t.stream()
                            )));
                        }
                        cols[s].check_capacity(&t)?;
                        group.bytes += t.heap_size() + PER_TUPLE_OVERHEAD;
                        cols[s].insert(key, &t);
                    }
                }
            }
        }
        group.output_count = output_count;
        Ok(group)
    }

    /// Clone the group's content as a snapshot without consuming it
    /// (used by tests and the drift checker).
    pub fn snapshot(&self) -> SpilledGroup {
        let per_stream = match &self.state {
            StateStore::Row(streams) => streams.iter().map(|s| s.tuples.clone()).collect(),
            StateStore::Columnar(cols) => cols
                .iter()
                .enumerate()
                .map(|(s, cp)| {
                    (0..cp.len())
                        .map(|i| cp.materialize(StreamId(s as u8), i))
                        .collect()
                })
                .collect(),
        };
        SpilledGroup {
            partition: self.pid,
            per_stream,
        }
    }

    /// Recompute accounted bytes from scratch (drift detection).
    /// Columnar rows are re-materialized from the arena, so this checks
    /// the stored `acct` column against ground truth too.
    pub fn recompute_bytes(&self) -> usize {
        match &self.state {
            StateStore::Row(streams) => streams
                .iter()
                .flat_map(|s| s.tuples.iter())
                .map(|t| t.heap_size() + PER_TUPLE_OVERHEAD)
                .sum(),
            StateStore::Columnar(cols) => cols
                .iter()
                .enumerate()
                .flat_map(|(s, cp)| {
                    (0..cp.len()).map(move |i| {
                        cp.materialize(StreamId(s as u8), i).heap_size() + PER_TUPLE_OVERHEAD
                    })
                })
                .sum(),
        }
    }

    /// Test-only: the ts-sorted flag of stream `s`.
    #[cfg(test)]
    fn ts_sorted_of(&self, s: usize) -> bool {
        match &self.state {
            StateStore::Row(streams) => streams[s].ts_sorted,
            StateStore::Columnar(cols) => cols[s].ts_sorted,
        }
    }

    /// Test-only: tuple count of stream `s`.
    #[cfg(test)]
    fn stream_len(&self, s: usize) -> usize {
        match &self.state {
            StateStore::Row(streams) => streams[s].tuples.len(),
            StateStore::Columnar(cols) => cols[s].len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectingSink, CountingSink};
    use dcape_common::ids::StreamId;
    use dcape_common::time::VirtualTime;
    use dcape_common::tuple::TupleBuilder;

    const LAYOUTS: [StateLayout; 2] = [StateLayout::Row, StateLayout::Columnar];

    fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
        TupleBuilder::new(StreamId(stream))
            .seq(seq)
            .ts(VirtualTime::from_millis(seq))
            .value(key)
            .build()
    }

    fn group3(layout: StateLayout) -> PartitionGroup {
        PartitionGroup::new(PartitionId(0), vec![0, 0, 0], None, layout)
    }

    #[test]
    fn three_way_join_produces_cartesian_results() {
        for layout in LAYOUTS {
            let mut g = group3(layout);
            let mut sink = CollectingSink::new();
            // 2 tuples on stream 0, 2 on stream 1, then 1 on stream 2: the
            // stream-2 insert sees 2x2 combinations.
            g.insert(tpl(0, 0, 7), &mut sink).unwrap();
            g.insert(tpl(0, 1, 7), &mut sink).unwrap();
            g.insert(tpl(1, 0, 7), &mut sink).unwrap();
            g.insert(tpl(1, 1, 7), &mut sink).unwrap();
            assert!(sink.is_empty(), "no stream-2 tuple yet, no results");
            let (n, _) = g.insert(tpl(2, 0, 7), &mut sink).unwrap();
            assert_eq!(n, 4);
            assert_eq!(sink.len(), 4);
            assert_eq!(g.output_count(), 4);
            // Every result has one tuple per stream, in stream order.
            for r in sink.results() {
                assert_eq!(r.len(), 3);
                for (s, t) in r.iter().enumerate() {
                    assert_eq!(t.stream().index(), s);
                }
            }
        }
    }

    #[test]
    fn results_match_multiplicity_cube() {
        // f tuples per stream with one shared key => f^3 total results.
        for layout in LAYOUTS {
            let f = 4u64;
            let mut g = group3(layout);
            let mut sink = CountingSink::new();
            for rep in 0..f {
                for s in 0..3u8 {
                    g.insert(tpl(s, rep, 1), &mut sink).unwrap();
                }
            }
            assert_eq!(sink.count(), f * f * f);
            assert_eq!(g.output_count(), f * f * f);
            assert_eq!(g.tuple_count(), (3 * f) as usize);
        }
    }

    #[test]
    fn different_keys_do_not_join() {
        for layout in LAYOUTS {
            let mut g = group3(layout);
            let mut sink = CountingSink::new();
            g.insert(tpl(0, 0, 1), &mut sink).unwrap();
            g.insert(tpl(1, 0, 2), &mut sink).unwrap();
            g.insert(tpl(2, 0, 3), &mut sink).unwrap();
            assert_eq!(sink.count(), 0);
            assert_eq!(g.productivity(), 0.0);
        }
    }

    #[test]
    fn two_way_join_works() {
        for layout in LAYOUTS {
            let mut g = PartitionGroup::new(PartitionId(1), vec![0, 0], None, layout);
            let mut sink = CountingSink::new();
            g.insert(tpl(0, 0, 5), &mut sink).unwrap();
            g.insert(tpl(1, 0, 5), &mut sink).unwrap();
            g.insert(tpl(1, 1, 5), &mut sink).unwrap();
            assert_eq!(sink.count(), 2);
        }
    }

    #[test]
    fn bytes_accounting_matches_recompute() {
        for layout in LAYOUTS {
            let mut g = group3(layout);
            let mut sink = CountingSink::new();
            for s in 0..3u8 {
                for i in 0..10 {
                    g.insert(tpl(s, i, (i % 3) as i64), &mut sink).unwrap();
                }
            }
            assert_eq!(g.bytes(), g.recompute_bytes());
            assert!(g.bytes() > 0);
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_state_and_stats() {
        for layout in LAYOUTS {
            for restore_layout in LAYOUTS {
                let mut g = group3(layout);
                let mut sink = CountingSink::new();
                for s in 0..3u8 {
                    for i in 0..5 {
                        g.insert(tpl(s, i, 1), &mut sink).unwrap();
                    }
                }
                let bytes_before = g.bytes();
                let output_before = g.output_count();
                let (snap, carried) = g.into_snapshot();
                assert_eq!(carried, output_before);
                let g2 = PartitionGroup::from_snapshot(
                    snap,
                    vec![0, 0, 0],
                    None,
                    carried,
                    restore_layout,
                )
                .unwrap();
                assert_eq!(g2.bytes(), bytes_before);
                assert_eq!(g2.output_count(), output_before);
                // Restored group continues joining correctly.
                let mut g2 = g2;
                let mut sink2 = CountingSink::new();
                g2.insert(tpl(0, 99, 1), &mut sink2).unwrap();
                // 5 on stream 1 x 5 on stream 2.
                assert_eq!(sink2.count(), 25);
            }
        }
    }

    #[test]
    fn from_snapshot_validates_stream_count() {
        for layout in LAYOUTS {
            let snap = SpilledGroup::empty(PartitionId(0), 2);
            assert!(PartitionGroup::from_snapshot(snap, vec![0, 0, 0], None, 0, layout).is_err());
        }
    }

    #[test]
    fn columnar_from_snapshot_rejects_misfiled_stream() {
        let mut snap = SpilledGroup::empty(PartitionId(0), 3);
        snap.per_stream[1].push(tpl(0, 0, 1)); // stream-0 tuple in slot 1
        assert!(
            PartitionGroup::from_snapshot(snap, vec![0, 0, 0], None, 0, StateLayout::Columnar)
                .is_err()
        );
    }

    #[test]
    fn insert_rejects_out_of_range_stream() {
        for layout in LAYOUTS {
            let mut g = group3(layout);
            let mut sink = CountingSink::new();
            assert!(g.insert(tpl(7, 0, 1), &mut sink).is_err());
        }
    }

    #[test]
    fn insert_rejects_missing_join_column() {
        for layout in LAYOUTS {
            let mut g = PartitionGroup::new(PartitionId(0), vec![2, 2, 2], None, layout);
            let mut sink = CountingSink::new();
            // Tuple has only one column; join column 2 is missing.
            assert!(g.insert(tpl(0, 0, 1), &mut sink).is_err());
        }
    }

    #[test]
    fn insert_run_matches_per_tuple_inserts() {
        for layout in LAYOUTS {
            let mut batched = group3(layout);
            let mut single = group3(layout);
            let mut bsink = CountingSink::new();
            let mut ssink = CountingSink::new();
            let tuples: Vec<Tuple> = (0..18u64)
                .map(|i| tpl((i % 3) as u8, i, (i % 2) as i64))
                .collect();
            let mut run = tuples.clone();
            let (emitted, added, status) = batched.insert_run(&mut run, &mut bsink);
            assert!(status.is_ok());
            assert!(run.is_empty(), "insert_run drains the batch");
            let mut s_emitted = 0u64;
            let mut s_added = 0usize;
            for t in tuples {
                let (e, a) = single.insert(t, &mut ssink).unwrap();
                s_emitted += e;
                s_added += a;
            }
            assert_eq!(emitted, s_emitted);
            assert_eq!(added, s_added);
            assert_eq!(bsink.count(), ssink.count());
            assert_eq!(batched.bytes(), single.bytes());
        }
    }

    #[test]
    fn insert_run_inserts_valid_prefix_then_errors() {
        for layout in LAYOUTS {
            let mut g = group3(layout);
            let mut sink = CountingSink::new();
            let mut run = vec![tpl(0, 0, 1), tpl(1, 0, 1), tpl(7, 0, 1), tpl(2, 0, 1)];
            let (_, added, status) = g.insert_run(&mut run, &mut sink);
            assert!(status.is_err(), "out-of-range stream reported");
            assert!(run.is_empty());
            assert_eq!(g.tuple_count(), 2, "valid prefix inserted, tail dropped");
            assert!(added > 0);
            assert_eq!(g.bytes(), g.recompute_bytes());
        }
    }

    #[test]
    fn windowed_counting_matches_collecting_oracle() {
        // Same inserts into two groups: the CountingSink takes the
        // product/window-pruned path, the CollectingSink enumerates.
        // Timestamps arrive in order (the live-stream case).
        for layout in LAYOUTS {
            let window = Some(VirtualDuration::from_millis(3));
            let mut fast = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window, layout);
            let mut slow = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window, layout);
            let mut count = CountingSink::new();
            let mut collect = CollectingSink::new();
            for i in 0..24u64 {
                let t = tpl((i % 3) as u8, i, 1);
                let (nf, _) = fast.insert(t.clone(), &mut count).unwrap();
                let before = collect.len();
                let (ns, _) = slow.insert(t, &mut collect).unwrap();
                assert_eq!(nf, ns, "per-insert emitted counts diverge at {i}");
                assert_eq!(collect.len() - before, ns as usize);
            }
            assert_eq!(count.count(), collect.len() as u64);
            assert_eq!(fast.output_count(), slow.output_count());
            assert!(count.count() > 0);
        }
    }

    #[test]
    fn out_of_order_arrivals_fall_back_and_stay_exact() {
        // Shuffled timestamps break the ts-sorted promise; the count
        // path must detect it and still match enumeration.
        for layout in LAYOUTS {
            let window = Some(VirtualDuration::from_millis(4));
            let mut fast = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window, layout);
            let mut slow = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window, layout);
            let mut count = CountingSink::new();
            let mut collect = CollectingSink::new();
            let ts_order = [9u64, 2, 14, 0, 7, 7, 3, 11, 1, 5, 13, 4];
            for (i, &ts) in ts_order.iter().enumerate() {
                let t = TupleBuilder::new(StreamId((i % 3) as u8))
                    .seq(i as u64)
                    .ts(VirtualTime::from_millis(ts))
                    .value(1i64)
                    .build();
                let (nf, _) = fast.insert(t.clone(), &mut count).unwrap();
                let (ns, _) = slow.insert(t, &mut collect).unwrap();
                assert_eq!(nf, ns, "per-insert emitted counts diverge at {i}");
            }
            assert_eq!(count.count(), collect.len() as u64);
            assert!(count.count() > 0);
        }
    }

    #[test]
    fn purge_restores_sorted_flag() {
        for layout in LAYOUTS {
            let window = Some(VirtualDuration::from_millis(5));
            let mut g = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window, layout);
            let mut sink = CountingSink::new();
            // An out-of-order early tuple, then in-order late ones.
            for (seq, ts) in [(0u64, 50u64), (1, 1), (2, 100), (3, 101)] {
                let t = TupleBuilder::new(StreamId(0))
                    .seq(seq)
                    .ts(VirtualTime::from_millis(ts))
                    .value(1i64)
                    .build();
                g.insert(t, &mut sink).unwrap();
            }
            assert!(!g.ts_sorted_of(0));
            g.purge_expired(VirtualTime::from_millis(103));
            assert!(g.ts_sorted_of(0), "rebuild recomputes sortedness");
            assert_eq!(g.stream_len(0), 2);
        }
    }

    #[test]
    fn purge_keeps_layouts_equivalent() {
        let window = Some(VirtualDuration::from_millis(5));
        let mut row = PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window, StateLayout::Row);
        let mut col =
            PartitionGroup::new(PartitionId(0), vec![0, 0, 0], window, StateLayout::Columnar);
        let mut s1 = CountingSink::new();
        let mut s2 = CountingSink::new();
        for i in 0..30u64 {
            let t = tpl((i % 3) as u8, i, (i % 2) as i64);
            row.insert(t.clone(), &mut s1).unwrap();
            col.insert(t, &mut s2).unwrap();
        }
        let fr = row.purge_expired(VirtualTime::from_millis(25));
        let fc = col.purge_expired(VirtualTime::from_millis(25));
        assert_eq!(fr, fc, "purge frees the same accounted bytes");
        assert!(fr > 0);
        assert_eq!(row.bytes(), col.bytes());
        assert_eq!(row.snapshot(), col.snapshot());
        assert_eq!(col.bytes(), col.recompute_bytes());
    }

    #[test]
    fn columnar_matches_row_reference() {
        // The central equivalence claim: both layouts produce identical
        // results, accounting, and snapshots under both sink kinds.
        let window = Some(VirtualDuration::from_millis(7));
        let mut row = PartitionGroup::new(PartitionId(3), vec![0, 0, 0], window, StateLayout::Row);
        let mut col =
            PartitionGroup::new(PartitionId(3), vec![0, 0, 0], window, StateLayout::Columnar);
        let mut row_collect = CollectingSink::new();
        let mut col_collect = CollectingSink::new();
        let mut row_count = CountingSink::new();
        let mut col_count = CountingSink::new();
        // Mixed-type tuples: int key plus a text payload column.
        for i in 0..36u64 {
            let t = TupleBuilder::new(StreamId((i % 3) as u8))
                .seq(i)
                .ts(VirtualTime::from_millis(i / 2))
                .value((i % 2) as i64)
                .value(["alpha", "beta", "gamma", "delta"][(i % 4) as usize])
                .build();
            let (re, ra) = row.insert(t.clone(), &mut row_collect).unwrap();
            let (ce, ca) = col.insert(t, &mut col_collect).unwrap();
            assert_eq!(re, ce, "emitted diverges at {i}");
            assert_eq!(ra, ca, "added bytes diverge at {i}");
            assert_eq!(row.snapshot(), col.snapshot(), "snapshots diverge at {i}");
        }
        assert_eq!(row_collect.identities(), col_collect.identities());
        assert_eq!(row.bytes(), col.bytes());
        assert_eq!(row.output_count(), col.output_count());
        // Counting sinks on replicas agree with enumeration.
        let (snap_r, out_r) = row.into_snapshot();
        let rr =
            PartitionGroup::from_snapshot(snap_r, vec![0, 0, 0], window, out_r, StateLayout::Row)
                .unwrap();
        let (snap_c, out_c) = col.into_snapshot();
        let cc = PartitionGroup::from_snapshot(
            snap_c,
            vec![0, 0, 0],
            window,
            out_c,
            StateLayout::Columnar,
        )
        .unwrap();
        let mut rr = rr;
        let mut cc = cc;
        let t = tpl(0, 999, 0);
        let (nr, _) = rr.insert(t.clone(), &mut row_count).unwrap();
        let (nc, _) = cc.insert(t, &mut col_count).unwrap();
        assert_eq!(nr, nc);
        assert_eq!(row_count.count(), col_count.count());
    }

    #[test]
    fn productivity_reflects_output_per_byte() {
        for layout in LAYOUTS {
            let mut hot = group3(layout);
            let mut cold = group3(layout);
            let mut sink = CountingSink::new();
            for s in 0..3u8 {
                for i in 0..6 {
                    hot.insert(tpl(s, i, 1), &mut sink).unwrap(); // all same key
                    cold.insert(tpl(s, i, i as i64 * 3 + s as i64), &mut sink)
                        .unwrap(); // no joins
                }
            }
            assert!(hot.productivity() > cold.productivity());
            assert_eq!(cold.output_count(), 0);
        }
    }
}
