//! Operator state: partition groups and productivity statistics.

pub mod partition_group;
pub mod productivity;

pub use partition_group::PartitionGroup;
pub use productivity::{GroupStats, ProductivityWindow};
