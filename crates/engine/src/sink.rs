//! Result sinks.
//!
//! Join results are delivered through a [`ResultSink`] rather than
//! returned as allocated vectors: the experiments count millions of
//! results per run, and the paper's metric of interest is the *output
//! rate*, not the output contents. [`CountingSink`] makes the hot path
//! allocation-free; [`CollectingSink`] materializes results for
//! correctness tests and the cleanup-completeness proofs.
//!
//! Delivery is **span-based**: producers hand a whole probe product to
//! the sink as one [`ProbeSpans`] via [`ResultSink::emit_product`].
//! The default implementation enumerates every window-valid combination
//! and calls [`ResultSink::emit`] — exact per-result semantics for
//! collecting sinks — while count-only sinks override it to count
//! without enumerating (see [`ProbeSpans::count_valid`]).

use crate::probe::ProbeSpans;
use dcape_common::tuple::Tuple;

/// Receiver of m-way join results.
///
/// `parts` holds one matched tuple per input stream, in stream order
/// (`parts[s]` came from stream `s`).
pub trait ResultSink {
    /// Deliver one result.
    fn emit(&mut self, parts: &[&Tuple]);

    /// Deliver a whole probe product in one call, returning the number
    /// of window-valid results it contained. The default enumerates
    /// every valid combination through [`emit`](Self::emit); count-only
    /// sinks override it to count in O(m) instead.
    fn emit_product(&mut self, spans: &ProbeSpans<'_, '_>) -> u64 {
        let mut emitted = 0u64;
        spans.for_each_valid(|parts| {
            self.emit(parts);
            emitted += 1;
        });
        emitted
    }

    /// Does this sink ever dereference result tuples? Count-only sinks
    /// return `false`, letting a columnar state probe deliver
    /// timestamp-only span lists without materializing rows. A sink
    /// answering `false` must not call [`crate::probe::SpanList::get`]
    /// (i.e. must not enumerate through `emit`).
    fn wants_rows(&self) -> bool {
        true
    }
}

/// Counts results without materializing them.
#[derive(Debug, Default)]
pub struct CountingSink {
    count: u64,
}

impl CountingSink {
    /// New sink with a zero count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Results seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl ResultSink for CountingSink {
    #[inline]
    fn emit(&mut self, _parts: &[&Tuple]) {
        self.count += 1;
    }

    /// Count-only fast path: no enumeration, just
    /// [`ProbeSpans::count_valid`].
    #[inline]
    fn emit_product(&mut self, spans: &ProbeSpans<'_, '_>) -> u64 {
        let n = spans.count_valid();
        self.count += n;
        n
    }

    #[inline]
    fn wants_rows(&self) -> bool {
        false
    }
}

/// Forces the per-combination delivery path regardless of the inner
/// sink's fast paths: `emit_product` keeps the enumerating default.
/// This is the benchmark baseline and the equivalence-test reference.
#[derive(Debug, Default)]
pub struct EnumeratingSink<S>(pub S);

impl<S: ResultSink> ResultSink for EnumeratingSink<S> {
    #[inline]
    fn emit(&mut self, parts: &[&Tuple]) {
        self.0.emit(parts);
    }
}

/// Materializes every result as a boxed slice of tuples (stream order).
#[derive(Debug, Default)]
pub struct CollectingSink {
    results: Vec<Box<[Tuple]>>,
}

impl CollectingSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected results.
    pub fn results(&self) -> &[Box<[Tuple]>] {
        &self.results
    }

    /// Consume the sink, returning the results.
    pub fn into_results(self) -> Vec<Box<[Tuple]>> {
        self.results
    }

    /// Result count.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Canonical identities of all results — each result reduced to the
    /// sorted-by-stream list of `(stream, seq)` pairs — for multiset
    /// comparison against a reference join in tests.
    pub fn identities(&self) -> Vec<Vec<(u8, u64)>> {
        let mut ids: Vec<Vec<(u8, u64)>> = self
            .results
            .iter()
            .map(|r| r.iter().map(|t| (t.stream().0, t.seq())).collect())
            .collect();
        ids.sort();
        ids
    }
}

impl ResultSink for CollectingSink {
    fn emit(&mut self, parts: &[&Tuple]) {
        self.results
            .push(parts.iter().map(|&t| t.clone()).collect());
    }
}

/// Forwards to two sinks (e.g. count + collect in one pass).
#[derive(Debug)]
pub struct TeeSink<'a, A: ResultSink, B: ResultSink> {
    /// First target.
    pub a: &'a mut A,
    /// Second target.
    pub b: &'a mut B,
}

impl<A: ResultSink, B: ResultSink> ResultSink for TeeSink<'_, A, B> {
    fn emit(&mut self, parts: &[&Tuple]) {
        self.a.emit(parts);
        self.b.emit(parts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::tuple::TupleBuilder;

    fn tuples() -> Vec<Tuple> {
        (0..3u8)
            .map(|s| {
                TupleBuilder::new(StreamId(s))
                    .seq(s as u64)
                    .value(1i64)
                    .build()
            })
            .collect()
    }

    #[test]
    fn counting_sink_counts() {
        let ts = tuples();
        let parts: Vec<&Tuple> = ts.iter().collect();
        let mut sink = CountingSink::new();
        sink.emit(&parts);
        sink.emit(&parts);
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn collecting_sink_materializes_in_stream_order() {
        let ts = tuples();
        let parts: Vec<&Tuple> = ts.iter().collect();
        let mut sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.emit(&parts);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.results()[0].len(), 3);
        assert_eq!(sink.results()[0][1].stream(), StreamId(1));
        let ids = sink.identities();
        assert_eq!(ids, vec![vec![(0, 0), (1, 1), (2, 2)]]);
    }

    #[test]
    fn counting_sink_emit_product_matches_enumeration() {
        use crate::probe::SpanList;
        let a = tuples();
        let b = tuples();
        let lists = [SpanList::Slice(&a), SpanList::Slice(&b)];
        let spans = ProbeSpans::new(&lists, None, true);
        let mut fast = CountingSink::new();
        let mut slow = EnumeratingSink(CountingSink::new());
        assert_eq!(fast.emit_product(&spans), 9);
        assert_eq!(slow.emit_product(&spans), 9);
        assert_eq!(fast.count(), slow.0.count());
    }

    #[test]
    fn collecting_sink_emit_product_enumerates() {
        use crate::probe::SpanList;
        let a = tuples();
        let single = tuples();
        let lists = [SpanList::Slice(&a), SpanList::One(&single[0])];
        let spans = ProbeSpans::new(&lists, None, true);
        let mut sink = CollectingSink::new();
        assert_eq!(sink.emit_product(&spans), 3);
        assert_eq!(sink.len(), 3);
        for r in sink.results() {
            assert_eq!(r.len(), 2);
        }
    }

    #[test]
    fn tee_feeds_both() {
        let ts = tuples();
        let parts: Vec<&Tuple> = ts.iter().collect();
        let mut count = CountingSink::new();
        let mut collect = CollectingSink::new();
        {
            let mut tee = TeeSink {
                a: &mut count,
                b: &mut collect,
            };
            tee.emit(&parts);
        }
        assert_eq!(count.count(), 1);
        assert_eq!(collect.len(), 1);
    }
}
