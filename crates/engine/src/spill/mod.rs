//! State spill: victim policies and the cleanup phase.

pub mod cleanup;
pub mod per_input;
pub mod policy;

pub use cleanup::{merge_segments, CleanupOutcome};
pub use per_input::{PerInputCleanupReport, PerInputJoin};
pub use policy::VictimPolicy;
