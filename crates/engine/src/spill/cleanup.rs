//! The cleanup phase: producing exactly the missing results.
//!
//! §3 of the paper: after the run-time phase, disk-resident partition
//! groups are (1) organized by partition ID, (2) merged, generating
//! missing results, and (3) merged with the memory-resident group of the
//! same ID, "applying incremental view maintenance algorithms".
//!
//! ## Why only cross-segment combinations are missing
//!
//! The engine spills **whole partition groups** (all inputs together).
//! While a group was memory-resident, the symmetric join produced every
//! result among its co-resident tuples. Segments of one partition ID are
//! therefore disjoint time slices `S₁, S₂, …, S_k` (plus the final
//! memory-resident slice): within-slice results already exist, and a
//! result mixing slices was never produced because its constituents were
//! never co-resident. The missing set is exactly the IVM expansion of
//! `(C₁+S)⋈…⋈(C_m+S)` minus `C⋈…⋈C` minus `S⋈…⋈S`: all per-stream
//! choice vectors over {cumulative, new-segment} except the two pure
//! ones. No timestamps are needed — the paper's argument for the
//! partition-group granularity (§2).

use dcape_common::error::{DcapeError, Result};
use dcape_common::hash::{FxHashMap, FxHashSet};
use dcape_common::tuple::Tuple;
use dcape_common::value::Value;
use dcape_storage::SpilledGroup;

use crate::probe::{ProbeSpans, SpanList, INLINE_STREAMS};
use crate::sink::ResultSink;

/// Statistics of one partition's cleanup merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanupOutcome {
    /// Missing results produced.
    pub missing_results: u64,
    /// Tuples scanned while building merge indexes (cost-model input).
    pub scanned_tuples: u64,
    /// Segments merged (including the memory-resident one, if present).
    pub segments_merged: usize,
}

/// Key-indexed per-stream tuple lists for one slice of a partition.
type SliceIndex = Vec<FxHashMap<Value, Vec<Tuple>>>;

fn index_slice(join_columns: &[usize], group: &SpilledGroup) -> Result<SliceIndex> {
    if group.per_stream.len() != join_columns.len() {
        return Err(DcapeError::state(format!(
            "segment for {} has {} streams, join configured for {}",
            group.partition,
            group.per_stream.len(),
            join_columns.len()
        )));
    }
    let mut index: SliceIndex = join_columns.iter().map(|_| FxHashMap::default()).collect();
    for (s, tuples) in group.per_stream.iter().enumerate() {
        for t in tuples {
            let key = t
                .get(join_columns[s])
                .ok_or_else(|| DcapeError::state("cleanup tuple lacks join column"))?
                .clone();
            index[s].entry(key).or_default().push(t.clone());
        }
    }
    Ok(index)
}

/// Deliver the cartesian product over per-stream lists (stream order),
/// filtered by the optional sliding window, as **one**
/// [`ResultSink::emit_product`] call: count-only sinks resolve the
/// whole choice vector without enumerating. Cumulative lists are
/// stitched from several engines' segments in engine order — not time
/// order — so no sortedness is promised; the count path re-detects it
/// per list.
fn emit_product(
    lists: &[&[Tuple]],
    window: Option<dcape_common::time::VirtualDuration>,
    sink: &mut dyn ResultSink,
) -> u64 {
    debug_assert!(lists.iter().all(|l| !l.is_empty()));
    let m = lists.len();
    if m <= INLINE_STREAMS {
        let mut spans = [SpanList::Slice(&[]); INLINE_STREAMS];
        for (slot, l) in spans.iter_mut().zip(lists) {
            *slot = SpanList::Slice(l);
        }
        sink.emit_product(&ProbeSpans::new(&spans[..m], window, false))
    } else {
        let spans: Vec<SpanList> = lists.iter().map(|l| SpanList::Slice(l)).collect();
        sink.emit_product(&ProbeSpans::new(&spans, window, false))
    }
}

/// Merge the time-ordered segments of **one partition ID**, emitting
/// exactly the missing (cross-segment) join results into `sink`.
///
/// `segments` must be in spill order; the caller appends the final
/// memory-resident group (if any) as the last element. Duplicates are
/// impossible by construction — see the module docs.
pub fn merge_segments(
    join_columns: &[usize],
    segments: Vec<SpilledGroup>,
    sink: &mut dyn ResultSink,
) -> Result<CleanupOutcome> {
    merge_segments_windowed(join_columns, None, segments, sink)
}

/// [`merge_segments`] with an optional sliding window: cross-slice
/// combinations whose timestamps span more than the window are not
/// results of the windowed query and are skipped.
pub fn merge_segments_windowed(
    join_columns: &[usize],
    window: Option<dcape_common::time::VirtualDuration>,
    segments: Vec<SpilledGroup>,
    sink: &mut dyn ResultSink,
) -> Result<CleanupOutcome> {
    let m = join_columns.len();
    let mut outcome = CleanupOutcome::default();
    // Cumulative state C, key-indexed per stream.
    let mut cumulative: SliceIndex = (0..m).map(|_| FxHashMap::default()).collect();
    let mut cumulative_empty = true;

    for segment in segments {
        outcome.scanned_tuples += segment.tuple_count() as u64;
        outcome.segments_merged += 1;
        let fresh = index_slice(join_columns, &segment)?;

        if !cumulative_empty {
            // Candidate keys: any key present in the fresh slice (every
            // mixed choice vector picks `fresh` for at least one stream).
            let mut candidate_keys: FxHashSet<&Value> = FxHashSet::default();
            for stream_index in &fresh {
                candidate_keys.extend(stream_index.keys());
            }
            for key in candidate_keys {
                // Per-stream availability in each side.
                let c_lists: Vec<&[Tuple]> = (0..m)
                    .map(|s| cumulative[s].get(key).map_or(&[][..], Vec::as_slice))
                    .collect();
                let f_lists: Vec<&[Tuple]> = (0..m)
                    .map(|s| fresh[s].get(key).map_or(&[][..], Vec::as_slice))
                    .collect();
                // Enumerate choice vectors: bit s of `mask` == 1 means
                // stream s takes the fresh side. Exclude all-C (0) and
                // all-fresh (full mask).
                let full: u32 = (1 << m) - 1;
                for mask in 1..full {
                    let mut lists: Vec<&[Tuple]> = Vec::with_capacity(m);
                    let mut viable = true;
                    for (s, (c, f)) in c_lists.iter().zip(&f_lists).enumerate() {
                        let chosen = if mask & (1 << s) != 0 { *f } else { *c };
                        if chosen.is_empty() {
                            viable = false;
                            break;
                        }
                        lists.push(chosen);
                    }
                    if viable {
                        outcome.missing_results += emit_product(&lists, window, sink);
                    }
                }
            }
        }

        // Merge the fresh slice into the cumulative state.
        for (s, stream_index) in fresh.into_iter().enumerate() {
            for (key, mut tuples) in stream_index {
                cumulative[s].entry(key).or_default().append(&mut tuples);
            }
        }
        cumulative_empty = false;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectingSink;
    use dcape_common::ids::{PartitionId, StreamId};
    use dcape_common::tuple::TupleBuilder;

    fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
        TupleBuilder::new(StreamId(stream))
            .seq(seq)
            .value(key)
            .build()
    }

    fn seg(tuples: Vec<Tuple>) -> SpilledGroup {
        let mut g = SpilledGroup::empty(PartitionId(0), 3);
        for t in tuples {
            g.per_stream[t.stream().index()].push(t);
        }
        g
    }

    /// Brute-force reference join over a set of slices: all (a,b,c)
    /// combinations with equal keys.
    fn reference_join(slices: &[&SpilledGroup]) -> Vec<Vec<(u8, u64)>> {
        let mut all: Vec<Vec<&Tuple>> = vec![Vec::new(); 3];
        for g in slices {
            for (s, ts) in g.per_stream.iter().enumerate() {
                all[s].extend(ts.iter());
            }
        }
        let mut out = Vec::new();
        for a in &all[0] {
            for b in &all[1] {
                for c in &all[2] {
                    if a.get(0) == b.get(0) && b.get(0) == c.get(0) {
                        out.push(vec![
                            (a.stream().0, a.seq()),
                            (b.stream().0, b.seq()),
                            (c.stream().0, c.seq()),
                        ]);
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Within-slice results (already produced at run time).
    fn within_slice_results(slices: &[&SpilledGroup]) -> Vec<Vec<(u8, u64)>> {
        let mut out = Vec::new();
        for g in slices {
            out.extend(reference_join(&[g]));
        }
        out.sort();
        out
    }

    #[test]
    fn two_segments_cross_results_only() {
        // Segment 1: one matching triple (keys 1).
        let s1 = seg(vec![tpl(0, 0, 1), tpl(1, 0, 1), tpl(2, 0, 1)]);
        // Segment 2: another triple with the same key.
        let s2 = seg(vec![tpl(0, 1, 1), tpl(1, 1, 1), tpl(2, 1, 1)]);
        let mut sink = CollectingSink::new();
        let outcome = merge_segments(&[0, 0, 0], vec![s1.clone(), s2.clone()], &mut sink).unwrap();

        // Total join = 2x2x2 = 8; within-segment = 1 + 1; missing = 6.
        assert_eq!(outcome.missing_results, 6);
        assert_eq!(outcome.segments_merged, 2);
        assert_eq!(outcome.scanned_tuples, 6);

        // The emitted set must be exactly reference minus within-slice.
        let reference = reference_join(&[&s1, &s2]);
        let within = within_slice_results(&[&s1, &s2]);
        let emitted = sink.identities();
        assert_eq!(emitted.len() + within.len(), reference.len());
        for r in &emitted {
            assert!(reference.contains(r));
            assert!(!within.contains(r), "duplicate of run-time result: {r:?}");
        }
    }

    #[test]
    fn three_segments_no_duplicates_and_complete() {
        let s1 = seg(vec![tpl(0, 0, 1), tpl(1, 0, 1)]);
        let s2 = seg(vec![tpl(2, 0, 1), tpl(0, 1, 1)]);
        let s3 = seg(vec![tpl(1, 1, 1), tpl(2, 1, 1), tpl(0, 2, 2)]);
        let mut sink = CollectingSink::new();
        merge_segments(
            &[0, 0, 0],
            vec![s1.clone(), s2.clone(), s3.clone()],
            &mut sink,
        )
        .unwrap();
        let reference = reference_join(&[&s1, &s2, &s3]);
        let within = within_slice_results(&[&s1, &s2, &s3]);
        let emitted = sink.identities();
        // Completeness: emitted + within == reference (as multisets).
        let mut combined = emitted.clone();
        combined.extend(within.clone());
        combined.sort();
        assert_eq!(combined, reference);
        // No duplicates within emitted.
        let mut dedup = emitted.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), emitted.len());
    }

    #[test]
    fn single_segment_produces_nothing() {
        let s1 = seg(vec![tpl(0, 0, 1), tpl(1, 0, 1), tpl(2, 0, 1)]);
        let mut sink = CollectingSink::new();
        let outcome = merge_segments(&[0, 0, 0], vec![s1], &mut sink).unwrap();
        assert_eq!(outcome.missing_results, 0);
        assert!(sink.is_empty());
    }

    #[test]
    fn disjoint_keys_produce_nothing() {
        let s1 = seg(vec![tpl(0, 0, 1), tpl(1, 0, 1), tpl(2, 0, 1)]);
        let s2 = seg(vec![tpl(0, 1, 2), tpl(1, 1, 2), tpl(2, 1, 2)]);
        let mut sink = CollectingSink::new();
        let outcome = merge_segments(&[0, 0, 0], vec![s1, s2], &mut sink).unwrap();
        assert_eq!(outcome.missing_results, 0);
    }

    #[test]
    fn empty_segment_list_is_noop() {
        let mut sink = CollectingSink::new();
        let outcome = merge_segments(&[0, 0, 0], vec![], &mut sink).unwrap();
        assert_eq!(outcome, CleanupOutcome::default());
    }

    #[test]
    fn partial_segments_still_combine() {
        // Segment 1 has only streams 0 and 1; segment 2 only stream 2:
        // every result is a cross result.
        let s1 = seg(vec![tpl(0, 0, 5), tpl(1, 0, 5)]);
        let s2 = seg(vec![tpl(2, 0, 5)]);
        let mut sink = CollectingSink::new();
        let outcome = merge_segments(&[0, 0, 0], vec![s1, s2], &mut sink).unwrap();
        assert_eq!(outcome.missing_results, 1);
        assert_eq!(sink.identities(), vec![vec![(0, 0), (1, 0), (2, 0)]]);
    }

    #[test]
    fn mismatched_stream_count_rejected() {
        let bad = SpilledGroup::empty(PartitionId(0), 2);
        let mut sink = CollectingSink::new();
        assert!(merge_segments(&[0, 0, 0], vec![bad], &mut sink).is_err());
    }

    #[test]
    fn two_way_join_cleanup() {
        let mut g1 = SpilledGroup::empty(PartitionId(0), 2);
        g1.per_stream[0].push(tpl(0, 0, 1));
        let mut g2 = SpilledGroup::empty(PartitionId(0), 2);
        g2.per_stream[1].push(tpl(1, 0, 1));
        let mut sink = CollectingSink::new();
        let outcome = merge_segments(&[0, 0], vec![g1, g2], &mut sink).unwrap();
        assert_eq!(outcome.missing_results, 1);
    }
}
