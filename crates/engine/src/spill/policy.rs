//! Victim-selection policies for state spill.
//!
//! When memory overflows, the local controller must pick *which*
//! partition groups to push (§3). The paper's policy ranks groups by
//! productivity and pushes the least productive; Figure 7 compares it
//! against its inverse, and the related-work baselines (XJoin's
//! largest-first) plus random/smallest-first round out the ablation set.

use rand::seq::SliceRandom;
use rand::Rng;

use dcape_common::ids::PartitionId;

use crate::state::productivity::{
    sort_least_productive_first, sort_most_productive_first, GroupStats,
};

/// How spill victims are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Uniformly random groups (used by the paper's Figures 5/6 sweep,
    /// which isolates the *amount* pushed from the *choice* of victims).
    Random,
    /// Push the largest groups first (XJoin's flush policy).
    LargestFirst,
    /// Push the smallest groups first.
    SmallestFirst,
    /// Push the least productive groups first — the paper's policy.
    LeastProductive,
    /// Push the most productive first — Figure 7's adversarial baseline.
    MostProductive,
}

impl VictimPolicy {
    /// Order `stats` by this policy's preference (most-preferred victim
    /// first), then take groups until their cumulative size reaches
    /// `target_bytes`. Always selects at least one group when any exist
    /// and `target_bytes > 0`.
    pub fn select_victims(
        &self,
        mut stats: Vec<GroupStats>,
        target_bytes: u64,
        rng: &mut impl Rng,
    ) -> Vec<PartitionId> {
        if target_bytes == 0 || stats.is_empty() {
            return Vec::new();
        }
        match self {
            VictimPolicy::Random => stats.shuffle(rng),
            VictimPolicy::LargestFirst => {
                stats.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.pid.cmp(&b.pid)))
            }
            VictimPolicy::SmallestFirst => {
                stats.sort_by(|a, b| a.bytes.cmp(&b.bytes).then(a.pid.cmp(&b.pid)))
            }
            VictimPolicy::LeastProductive => sort_least_productive_first(&mut stats),
            VictimPolicy::MostProductive => sort_most_productive_first(&mut stats),
        }
        take_until_bytes(&stats, target_bytes)
    }
}

/// Take a prefix of `stats` whose cumulative bytes reach `target_bytes`
/// (skipping empty groups — spilling nothing frees nothing).
pub fn take_until_bytes(stats: &[GroupStats], target_bytes: u64) -> Vec<PartitionId> {
    let mut out = Vec::new();
    let mut acc = 0u64;
    for s in stats {
        if s.bytes == 0 {
            continue;
        }
        out.push(s.pid);
        acc += s.bytes as u64;
        if acc >= target_bytes {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gs(pid: u32, bytes: usize, output: u64) -> GroupStats {
        GroupStats::new(PartitionId(pid), bytes, output)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn stats() -> Vec<GroupStats> {
        vec![
            gs(0, 100, 1000), // very productive
            gs(1, 300, 30),   // large, unproductive
            gs(2, 50, 200),   // small, productive
            gs(3, 200, 0),    // unproductive
        ]
    }

    #[test]
    fn least_productive_picks_duds_first() {
        let v = VictimPolicy::LeastProductive.select_victims(stats(), 400, &mut rng());
        assert_eq!(v, vec![PartitionId(3), PartitionId(1)]);
    }

    #[test]
    fn most_productive_picks_hot_groups_first() {
        let v = VictimPolicy::MostProductive.select_victims(stats(), 120, &mut rng());
        // pid 0 prod=10, pid 2 prod=4 => 0 first (100 bytes), then 2.
        assert_eq!(v, vec![PartitionId(0), PartitionId(2)]);
    }

    #[test]
    fn largest_and_smallest_first() {
        let v = VictimPolicy::LargestFirst.select_victims(stats(), 300, &mut rng());
        assert_eq!(v, vec![PartitionId(1)]);
        let v = VictimPolicy::SmallestFirst.select_victims(stats(), 140, &mut rng());
        assert_eq!(v, vec![PartitionId(2), PartitionId(0)]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_covers_target() {
        let a = VictimPolicy::Random.select_victims(stats(), 250, &mut rng());
        let b = VictimPolicy::Random.select_victims(stats(), 250, &mut rng());
        assert_eq!(a, b);
        let total: u64 = a
            .iter()
            .map(|pid| stats().iter().find(|s| s.pid == *pid).unwrap().bytes as u64)
            .sum();
        assert!(total >= 250 || a.len() == 4);
    }

    #[test]
    fn zero_target_or_empty_stats_select_nothing() {
        assert!(VictimPolicy::LeastProductive
            .select_victims(stats(), 0, &mut rng())
            .is_empty());
        assert!(VictimPolicy::LeastProductive
            .select_victims(vec![], 100, &mut rng())
            .is_empty());
    }

    #[test]
    fn empty_groups_skipped() {
        let v = take_until_bytes(&[gs(0, 0, 0), gs(1, 10, 0)], 5);
        assert_eq!(v, vec![PartitionId(1)]);
    }

    #[test]
    fn huge_target_takes_everything() {
        let v = VictimPolicy::LeastProductive.select_victims(stats(), u64::MAX, &mut rng());
        assert_eq!(v.len(), 4);
    }
}
