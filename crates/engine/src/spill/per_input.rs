//! The XJoin-style **per-input** spill baseline (§2, Figure 3(a)).
//!
//! The paper contrasts its partition-group granularity with the
//! alternative of spilling partitions of *individual inputs*
//! independently, as XJoin [25] and Hash-Merge Join [17] do. That
//! alternative forces two costs the partition-group design avoids:
//!
//! 1. **Timestamp bookkeeping.** When only input A's partition is pushed
//!    at time `t`, the tuples of B and C that arrive *after* `t` have
//!    already probed an A-side that no longer contains the spilled
//!    tuples — so the cleanup must join the spilled A-segment `A₁¹`
//!    against exactly the B/C tuples with timestamp `> t` is wrong; it
//!    is the *complement*: every B/C tuple that was present **at or
//!    before** the push already joined with `A₁¹` at run time, so the
//!    cleanup must pair `A₁¹` only with B/C tuples that arrived after
//!    the push (and with later-spilled segments, watermark-compared).
//!    "The cleanup needs to be carefully synchronized with the
//!    timestamps of the input tuples and the timestamps of the
//!    partitions being pushed" — this module implements exactly that
//!    synchronization, as the measurable cost of the design the paper
//!    rejects.
//! 2. **Cross-machine joins** if relocation moved per-input partitions
//!    independently (not implemented — the cluster layer only supports
//!    the partition-group granularity; this baseline is single-engine).
//!
//! Semantics implemented here: the operator state is one partition per
//! (input, partition-ID). A spill pushes the partition of **one** input
//! whose tuples become inactive: subsequent probes from other inputs do
//! not see them (results deferred to cleanup), while new tuples of the
//! spilled input accumulate into a fresh in-memory partition. Cleanup
//! reunites everything: a result `(a, b, c)` was produced at run time
//! iff, at the moment its *last* constituent arrived, the other two were
//! memory-resident; the cleanup emits precisely the complement, using
//! per-tuple arrival sequence numbers and per-segment push watermarks.

use dcape_common::error::{DcapeError, Result};
use dcape_common::hash::FxHashMap;
use dcape_common::ids::PartitionId;
use dcape_common::mem::{HeapSize, MemoryTracker};
use dcape_common::tuple::Tuple;
use dcape_common::value::Value;

use crate::sink::ResultSink;

/// Global arrival order stamp (the "timestamp" of §2's discussion; we
/// use a dense sequence number assigned by the operator).
type Stamp = u64;

/// Per-input key index over stamped tuples used by the cleanup merge.
type StampedIndex = FxHashMap<Value, Vec<(Stamp, Stamp, Tuple)>>;

/// One spilled per-input segment: the partition of one input pushed at
/// `pushed_at`.
#[derive(Debug, Clone)]
struct InputSegment {
    stream: usize,
    pushed_at: Stamp,
    /// `(arrival stamp, join key, tuple)` triples, in arrival order.
    tuples: Vec<(Stamp, Value, Tuple)>,
}

#[derive(Debug, Default)]
struct InputPartition {
    /// Memory-resident tuples: stamp + key + tuple.
    tuples: Vec<(Stamp, Value, Tuple)>,
    index: FxHashMap<Value, Vec<u32>>,
    bytes: usize,
}

impl InputPartition {
    fn insert(&mut self, stamp: Stamp, key: Value, tuple: Tuple) {
        let pos = self.tuples.len() as u32;
        self.bytes += tuple.heap_size();
        self.index.entry(key.clone()).or_default().push(pos);
        self.tuples.push((stamp, key, tuple));
    }

    fn matches(&self, key: &Value) -> impl Iterator<Item = &(Stamp, Value, Tuple)> {
        self.index
            .get(key)
            .into_iter()
            .flat_map(|positions| positions.iter().map(|&p| &self.tuples[p as usize]))
    }
}

/// Per-partition state across all inputs, plus this partition's spilled
/// segments.
#[derive(Debug)]
struct GroupState {
    inputs: Vec<InputPartition>,
    segments: Vec<InputSegment>,
}

/// Report of a per-input cleanup run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerInputCleanupReport {
    /// Missing results emitted.
    pub missing_results: u64,
    /// Segments merged.
    pub segments: usize,
    /// Timestamp comparisons performed — the bookkeeping overhead that
    /// the partition-group design eliminates (reported so the ablation
    /// can quantify the paper's argument).
    pub stamp_comparisons: u64,
}

/// A symmetric m-way hash join whose spill unit is a **single input's**
/// partition, with full timestamp bookkeeping (the baseline the paper
/// argues against). Single-engine only.
#[derive(Debug)]
pub struct PerInputJoin {
    join_columns: Vec<usize>,
    groups: FxHashMap<PartitionId, GroupState>,
    tracker: std::sync::Arc<MemoryTracker>,
    next_stamp: Stamp,
    output: u64,
}

impl PerInputJoin {
    /// Create with one join column per input stream.
    pub fn new(join_columns: Vec<usize>, tracker: std::sync::Arc<MemoryTracker>) -> Result<Self> {
        if join_columns.len() < 2 {
            return Err(DcapeError::config("m-way join needs >= 2 inputs"));
        }
        Ok(PerInputJoin {
            join_columns,
            groups: FxHashMap::default(),
            tracker,
            next_stamp: 0,
            output: 0,
        })
    }

    fn num_streams(&self) -> usize {
        self.join_columns.len()
    }

    /// Total results produced at run time.
    pub fn output(&self) -> u64 {
        self.output
    }

    /// Memory-resident accounted bytes.
    pub fn state_bytes(&self) -> usize {
        self.groups
            .values()
            .flat_map(|g| g.inputs.iter())
            .map(|i| i.bytes)
            .sum()
    }

    /// Process one tuple of partition `pid`; emits the results formed
    /// with currently *memory-resident* tuples of the other inputs.
    pub fn process(
        &mut self,
        pid: PartitionId,
        tuple: Tuple,
        sink: &mut dyn ResultSink,
    ) -> Result<u64> {
        let m = self.num_streams();
        let s = tuple.stream().index();
        if s >= m {
            return Err(DcapeError::state("stream out of range"));
        }
        let key = tuple
            .get(self.join_columns[s])
            .ok_or_else(|| DcapeError::state("tuple lacks join column"))?
            .clone();
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let group = self.groups.entry(pid).or_insert_with(|| GroupState {
            inputs: (0..m).map(|_| InputPartition::default()).collect(),
            segments: Vec::new(),
        });

        // Probe the memory-resident partitions of every other input.
        let mut lists: Vec<Vec<&Tuple>> = Vec::with_capacity(m);
        let mut viable = true;
        for (i, input) in group.inputs.iter().enumerate() {
            if i == s {
                lists.push(vec![]);
                continue;
            }
            let l: Vec<&Tuple> = input.matches(&key).map(|(_, _, t)| t).collect();
            if l.is_empty() {
                viable = false;
                break;
            }
            lists.push(l);
        }
        let mut emitted = 0u64;
        if viable {
            // Odometer over the other inputs.
            let mut counters = vec![0usize; m];
            let mut parts: Vec<&Tuple> = vec![&tuple; m];
            'outer: loop {
                for i in 0..m {
                    if i != s {
                        parts[i] = lists[i][counters[i]];
                    }
                }
                sink.emit(&parts);
                emitted += 1;
                for i in (0..m).rev() {
                    if i == s {
                        continue;
                    }
                    counters[i] += 1;
                    if counters[i] < lists[i].len() {
                        continue 'outer;
                    }
                    counters[i] = 0;
                }
                break;
            }
        }
        drop(lists);
        let bytes = tuple.heap_size();
        group.inputs[s].insert(stamp, key, tuple);
        self.tracker.allocate(bytes);
        self.output += emitted;
        Ok(emitted)
    }

    /// Spill the partition of **one input** of one partition ID (the
    /// XJoin move). Its tuples become inactive until cleanup. Returns
    /// the bytes freed, or `None` if there was nothing to push.
    pub fn spill_input(&mut self, pid: PartitionId, stream: usize) -> Option<usize> {
        let group = self.groups.get_mut(&pid)?;
        let input = group.inputs.get_mut(stream)?;
        if input.tuples.is_empty() {
            return None;
        }
        // Consume a stamp: pushes and arrivals share one total order,
        // so visibility checks can use strict comparison.
        let pushed_at = self.next_stamp;
        self.next_stamp += 1;
        let tuples = std::mem::take(&mut input.tuples);
        input.index.clear();
        let freed = input.bytes;
        input.bytes = 0;
        self.tracker.release(freed);
        group.segments.push(InputSegment {
            stream,
            pushed_at,
            tuples,
        });
        Some(freed)
    }

    /// Sizes of each input's memory-resident partition for `pid`
    /// (spill-policy input).
    pub fn input_sizes(&self, pid: PartitionId) -> Vec<usize> {
        self.groups
            .get(&pid)
            .map(|g| g.inputs.iter().map(|i| i.bytes).collect())
            .unwrap_or_default()
    }

    /// All partitions with any state (sorted).
    pub fn partitions(&self) -> Vec<PartitionId> {
        let mut pids: Vec<PartitionId> = self.groups.keys().copied().collect();
        pids.sort_unstable();
        pids
    }

    /// The cleanup phase with timestamp synchronization.
    ///
    /// A combination (one tuple per input) was produced at run time iff
    /// **when its last-arriving member arrived, every other member was
    /// memory-resident** — i.e. arrived earlier AND was not yet pushed:
    /// member `x` (stamp `sx`, in a segment pushed at `px`, or resident
    /// with `px = ∞`) was visible to the arrival at stamp `sl` iff
    /// `sx < sl < px` (noting `px > sx` always). The cleanup therefore
    /// enumerates all key-matching combinations and emits exactly those
    /// for which visibility failed for at least one member — each
    /// missing combination exactly once.
    pub fn cleanup(mut self, sink: &mut dyn ResultSink) -> Result<PerInputCleanupReport> {
        let m = self.num_streams();
        let mut report = PerInputCleanupReport::default();
        let pids = self.partitions();
        for pid in pids {
            let group = self.groups.remove(&pid).expect("listed");
            report.segments += group.segments.len();
            // Assemble, per input, every tuple with (stamp, push stamp).
            // Residents get push stamp = MAX.
            let mut per_input: Vec<StampedIndex> = (0..m).map(|_| FxHashMap::default()).collect();
            for seg in group.segments {
                for (stamp, key, tuple) in seg.tuples {
                    per_input[seg.stream].entry(key).or_default().push((
                        stamp,
                        seg.pushed_at,
                        tuple,
                    ));
                }
            }
            for (i, input) in group.inputs.into_iter().enumerate() {
                for (stamp, key, tuple) in input.tuples {
                    per_input[i]
                        .entry(key)
                        .or_default()
                        .push((stamp, Stamp::MAX, tuple));
                }
            }
            // Candidate keys = keys present in every input.
            let keys: Vec<Value> = per_input[0]
                .keys()
                .filter(|k| per_input.iter().all(|pi| pi.contains_key(*k)))
                .cloned()
                .collect();
            for key in keys {
                let lists: Vec<&Vec<(Stamp, Stamp, Tuple)>> =
                    per_input.iter().map(|pi| &pi[&key]).collect();
                // Odometer over the full cartesian product; emit the
                // combinations NOT produced at run time.
                let mut counters = vec![0usize; m];
                'outer: loop {
                    let combo: Vec<&(Stamp, Stamp, Tuple)> =
                        (0..m).map(|i| &lists[i][counters[i]]).collect();
                    // Last arrival in the combo.
                    let last = combo.iter().map(|(s, _, _)| *s).max().expect("m >= 2");
                    let mut produced_at_runtime = true;
                    for (stamp, pushed_at, _) in &combo {
                        report.stamp_comparisons += 1;
                        // The last arriver itself is trivially visible.
                        if *stamp == last {
                            continue;
                        }
                        // Visible iff not yet pushed when `last` arrived.
                        if *pushed_at < last {
                            produced_at_runtime = false;
                            break;
                        }
                    }
                    if !produced_at_runtime {
                        let parts: Vec<&Tuple> = combo.iter().map(|(_, _, t)| t).collect();
                        sink.emit(&parts);
                        report.missing_results += 1;
                    }
                    // Advance.
                    for i in (0..m).rev() {
                        counters[i] += 1;
                        if counters[i] < lists[i].len() {
                            continue 'outer;
                        }
                        counters[i] = 0;
                    }
                    break;
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectingSink, CountingSink};
    use dcape_common::ids::StreamId;
    use dcape_common::time::VirtualTime;
    use dcape_common::tuple::TupleBuilder;

    fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
        TupleBuilder::new(StreamId(stream))
            .seq(seq)
            .ts(VirtualTime::from_millis(seq))
            .value(key)
            .build()
    }

    fn join3() -> PerInputJoin {
        PerInputJoin::new(vec![0, 0, 0], MemoryTracker::new(u64::MAX)).unwrap()
    }

    /// Reference: all same-key triples over everything processed.
    fn reference(all: &[Tuple]) -> Vec<Vec<(u8, u64)>> {
        let mut out = Vec::new();
        for a in all.iter().filter(|t| t.stream().0 == 0) {
            for b in all.iter().filter(|t| t.stream().0 == 1) {
                for c in all.iter().filter(|t| t.stream().0 == 2) {
                    if a.get(0) == b.get(0) && b.get(0) == c.get(0) {
                        out.push(vec![(0u8, a.seq()), (1u8, b.seq()), (2u8, c.seq())]);
                    }
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn no_spill_matches_symmetric_join() {
        let mut j = join3();
        let mut sink = CountingSink::new();
        for seq in 0..5u64 {
            for s in 0..3u8 {
                j.process(PartitionId(0), tpl(s, seq, 1), &mut sink)
                    .unwrap();
            }
        }
        assert_eq!(sink.count(), 125);
        assert_eq!(j.output(), 125);
    }

    #[test]
    fn spilled_input_goes_inactive() {
        let mut j = join3();
        let mut sink = CountingSink::new();
        j.process(PartitionId(0), tpl(0, 0, 1), &mut sink).unwrap();
        j.process(PartitionId(0), tpl(1, 0, 1), &mut sink).unwrap();
        let freed = j.spill_input(PartitionId(0), 0).unwrap();
        assert!(freed > 0);
        // Stream 2 arrives: A is on disk, so no result at run time.
        j.process(PartitionId(0), tpl(2, 0, 1), &mut sink).unwrap();
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn cleanup_completes_exactly_once_single_spill() {
        let mut j = join3();
        let mut runtime = CollectingSink::new();
        let mut all = Vec::new();
        let feed = |j: &mut PerInputJoin,
                    sink: &mut CollectingSink,
                    s: u8,
                    q: u64,
                    k: i64,
                    all: &mut Vec<Tuple>| {
            let t = tpl(s, q, k);
            all.push(t.clone());
            j.process(PartitionId(0), t, sink).unwrap();
        };
        feed(&mut j, &mut runtime, 0, 0, 1, &mut all);
        feed(&mut j, &mut runtime, 1, 0, 1, &mut all);
        feed(&mut j, &mut runtime, 2, 0, 1, &mut all); // produced: 1
        j.spill_input(PartitionId(0), 0).unwrap();
        feed(&mut j, &mut runtime, 1, 1, 1, &mut all); // A inactive: nothing
        feed(&mut j, &mut runtime, 2, 1, 1, &mut all); // joins B{0,1} x A{} => 0... B is visible: (b?,c1) needs A too: 0
        feed(&mut j, &mut runtime, 0, 1, 1, &mut all); // fresh A partition: joins B{0,1} x C{0,1} = 4
        let mut cleanup = CollectingSink::new();
        let report = j.cleanup(&mut cleanup).unwrap();
        let mut produced = runtime.identities();
        produced.extend(cleanup.identities());
        produced.sort();
        assert_eq!(produced, reference(&all));
        assert!(report.missing_results > 0);
        assert!(report.stamp_comparisons > 0);
        // No duplicates.
        let mut dedup = produced.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), produced.len());
    }

    #[test]
    fn cleanup_exact_under_many_random_spills() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut j = join3();
            let mut runtime = CollectingSink::new();
            let mut all = Vec::new();
            for seq in 0..60u64 {
                let s = rng.gen_range(0..3u8);
                let k = rng.gen_range(0..4i64);
                let t = tpl(s, seq, k);
                all.push(t.clone());
                j.process(PartitionId((k % 2) as u32), t, &mut runtime)
                    .unwrap();
                if rng.gen_bool(0.15) {
                    let pid = PartitionId(rng.gen_range(0..2u32));
                    let stream = rng.gen_range(0..3usize);
                    let _ = j.spill_input(pid, stream);
                }
            }
            let mut cleanup = CollectingSink::new();
            j.cleanup(&mut cleanup).unwrap();
            let mut produced = runtime.identities();
            produced.extend(cleanup.identities());
            produced.sort();
            let expected = reference(&all);
            assert_eq!(produced.len(), expected.len(), "seed {seed}: count");
            assert_eq!(produced, expected, "seed {seed}: loss or duplicate");
        }
    }

    #[test]
    fn spill_empty_input_returns_none() {
        let mut j = join3();
        assert!(j.spill_input(PartitionId(0), 0).is_none());
        let mut sink = CountingSink::new();
        j.process(PartitionId(0), tpl(0, 0, 1), &mut sink).unwrap();
        assert!(j.spill_input(PartitionId(0), 1).is_none(), "stream 1 empty");
        assert!(j.spill_input(PartitionId(0), 0).is_some());
        assert!(j.spill_input(PartitionId(0), 0).is_none(), "already pushed");
    }

    #[test]
    fn input_sizes_reflect_state() {
        let mut j = join3();
        let mut sink = CountingSink::new();
        j.process(PartitionId(3), tpl(0, 0, 3), &mut sink).unwrap();
        j.process(PartitionId(3), tpl(0, 1, 3), &mut sink).unwrap();
        j.process(PartitionId(3), tpl(1, 2, 3), &mut sink).unwrap();
        let sizes = j.input_sizes(PartitionId(3));
        assert_eq!(sizes.len(), 3);
        assert!(sizes[0] > sizes[1]);
        assert_eq!(sizes[2], 0);
        assert!(j.input_sizes(PartitionId(9)).is_empty());
        assert_eq!(j.partitions(), vec![PartitionId(3)]);
        assert!(j.state_bytes() > 0);
    }

    #[test]
    fn rejects_bad_config_and_inputs() {
        assert!(PerInputJoin::new(vec![0], MemoryTracker::new(1)).is_err());
        let mut j = join3();
        let mut sink = CountingSink::new();
        assert!(j.process(PartitionId(0), tpl(7, 0, 1), &mut sink).is_err());
    }
}
