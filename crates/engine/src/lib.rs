//! # dcape-engine
//!
//! The query engine: a single machine's share of a partitioned,
//! state-intensive, non-blocking query (§2 of the paper).
//!
//! The centrepiece is the **symmetric m-way hash join**
//! ([`operators::mjoin::MJoinOperator`]) whose state is organized into
//! **partition groups** ([`state::partition_group::PartitionGroup`]) —
//! the partitions of all input streams sharing one partition ID, the
//! smallest unit of adaptation (§2, Figure 3(b)).
//!
//! Around it:
//!
//! * [`state::productivity`] — the paper's partition-group productivity
//!   metric `P_output / P_size` and engine-level average productivity
//!   rate `R`.
//! * [`spill::policy`] — victim-selection policies for state spill
//!   (productivity-ranked per the paper, plus the XJoin largest-first
//!   and other baselines).
//! * [`spill::cleanup`] — the cleanup phase: merging disk-resident
//!   segments back, emitting exactly the missing results (incremental
//!   view-maintenance expansion over spill segments).
//! * [`controller`] — the local adaptation controller: `ss_timer`-driven
//!   overflow detection, spill execution, and the
//!   `computePartsToMove` half of the relocation protocol.
//! * [`engine`] — [`engine::QueryEngine`], assembling all of the above
//!   behind the interface the cluster layer drives.
//! * [`operators`] — additional non-blocking operators (select, project,
//!   group-by aggregate) used by the example queries.
//!
//! # Example
//!
//! ```
//! use dcape_common::ids::{EngineId, PartitionId, StreamId};
//! use dcape_common::time::VirtualTime;
//! use dcape_common::tuple::TupleBuilder;
//! use dcape_engine::{CountingSink, EngineConfig, QueryEngine};
//!
//! let mut engine =
//!     QueryEngine::in_memory(EngineId(0), EngineConfig::three_way(1 << 20, 1 << 19))?;
//! let mut results = CountingSink::new();
//! for stream in 0..3u8 {
//!     let tuple = TupleBuilder::new(StreamId(stream))
//!         .ts(VirtualTime::from_millis(30))
//!         .value(7i64)
//!         .build();
//!     engine.process(PartitionId(7), tuple, &mut results)?;
//! }
//! assert_eq!(results.count(), 1); // one three-way match on key 7
//! # Ok::<(), dcape_common::DcapeError>(())
//! ```

pub mod config;
pub mod controller;
pub mod engine;
pub mod operators;
pub mod plan;
pub mod probe;
pub mod sink;
pub mod spill;
pub mod state;
pub mod stats;

pub use config::{CostModel, EngineConfig, MJoinConfig};
pub use controller::{LocalController, Mode};
pub use engine::QueryEngine;
pub use operators::mjoin::MJoinOperator;
pub use plan::{PlanExecutor, QueryPlan};
pub use probe::{ProbeSpans, SpanList};
pub use sink::{CollectingSink, CountingSink, EnumeratingSink, ResultSink};
pub use spill::policy::VictimPolicy;
pub use stats::EngineStatsReport;
