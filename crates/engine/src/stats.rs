//! Statistics reported by each query engine to the global coordinator.
//!
//! §2/§4: "the global coordinator only requires to collect very
//! light-weight running statistics, such as main memory usage" — the
//! report deliberately contains only scalars (no per-partition detail),
//! which is what keeps the coordinator scalable. The per-partition
//! ranking happens locally.

use dcape_common::ids::EngineId;
use dcape_common::time::VirtualTime;

/// One engine's periodic report to the global coordinator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStatsReport {
    /// Reporting engine.
    pub engine: EngineId,
    /// Virtual time of the snapshot.
    pub at: VirtualTime,
    /// Accounted state bytes in memory (the coordinator's `load`).
    pub memory_used: u64,
    /// The engine's memory budget.
    pub memory_budget: u64,
    /// Resident partition groups.
    pub num_groups: usize,
    /// Results produced since the previous report (sampling window).
    pub window_output: u64,
    /// Cumulative results produced.
    pub total_output: u64,
    /// Average productivity rate `R` = window_output / num_groups
    /// (§5.3, drives the active-disk strategy).
    pub avg_productivity_rate: f64,
    /// Accounted state bytes currently spilled on this engine's disk.
    pub spilled_bytes: u64,
    /// Spill operations performed so far.
    pub spill_count: u64,
}

impl EngineStatsReport {
    /// Memory utilization fraction.
    pub fn utilization(&self) -> f64 {
        if self.memory_budget == 0 {
            0.0
        } else {
            self.memory_used as f64 / self.memory_budget as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let r = EngineStatsReport {
            engine: EngineId(0),
            at: VirtualTime::ZERO,
            memory_used: 50,
            memory_budget: 200,
            num_groups: 3,
            window_output: 10,
            total_output: 100,
            avg_productivity_rate: 3.33,
            spilled_bytes: 0,
            spill_count: 0,
        };
        assert!((r.utilization() - 0.25).abs() < 1e-12);
        let z = EngineStatsReport {
            memory_budget: 0,
            ..r
        };
        assert_eq!(z.utilization(), 0.0);
    }
}
