//! The symmetric m-way hash join operator (one partitioned instance).
//!
//! This is one *instance* of the partitioned operator of §2, i.e. the
//! portion running on one machine. It owns a map from partition ID to
//! [`PartitionGroup`] and keeps the engine's [`MemoryTracker`] and
//! [`ProductivityWindow`] up to date on every insert. The adaptation
//! controllers act through the extraction/installation API:
//!
//! * spill: [`MJoinOperator::drain_group`] hands a group's snapshot to
//!   the spill store and frees its memory;
//! * relocation: [`MJoinOperator::extract_group`] /
//!   [`MJoinOperator::install_group`] move a group (with its carried
//!   `P_output`) between machines.

use std::sync::Arc;

use dcape_common::batch::TupleBatch;
use dcape_common::error::{DcapeError, Result};
use dcape_common::hash::FxHashMap;
use dcape_common::ids::PartitionId;
use dcape_common::mem::MemoryTracker;
use dcape_common::tuple::Tuple;
use dcape_storage::SpilledGroup;

use crate::config::MJoinConfig;
use crate::sink::ResultSink;
use crate::state::partition_group::PartitionGroup;
use crate::state::productivity::{GroupStats, ProductivityEstimator, ProductivityWindow};

/// One machine's instance of the partitioned symmetric m-way hash join.
#[derive(Debug)]
pub struct MJoinOperator {
    cfg: MJoinConfig,
    /// `cfg.join_columns` shared across every partition group: creating
    /// a group on first arrival bumps a refcount instead of cloning the
    /// column vector.
    join_columns: Arc<[usize]>,
    groups: FxHashMap<PartitionId, PartitionGroup>,
    tracker: Arc<MemoryTracker>,
    window: ProductivityWindow,
    /// Groups spilled since the beginning (count of drain operations).
    drain_count: u64,
    /// Incrementally maintained sum of all resident groups' bytes, so
    /// stats samples don't pay an O(#groups) walk. Checked against
    /// [`MJoinOperator::recompute_state_bytes`] in tests/debug asserts.
    state_bytes: usize,
}

impl MJoinOperator {
    /// Build an operator instance. Fails on invalid configuration.
    pub fn new(cfg: MJoinConfig, tracker: Arc<MemoryTracker>) -> Result<Self> {
        cfg.validate()?;
        let join_columns: Arc<[usize]> = cfg.join_columns.as_slice().into();
        Ok(MJoinOperator {
            cfg,
            join_columns,
            groups: FxHashMap::default(),
            tracker,
            window: ProductivityWindow::new(),
            drain_count: 0,
            state_bytes: 0,
        })
    }

    /// The operator's configuration.
    pub fn config(&self) -> &MJoinConfig {
        &self.cfg
    }

    /// Process one input tuple belonging to partition `pid`; results go
    /// to `sink`. Returns the number of results emitted.
    pub fn process(
        &mut self,
        pid: PartitionId,
        tuple: Tuple,
        sink: &mut dyn ResultSink,
    ) -> Result<u64> {
        let group = self.groups.entry(pid).or_insert_with(|| {
            PartitionGroup::new(
                pid,
                Arc::clone(&self.join_columns),
                self.cfg.window,
                self.cfg.layout,
            )
        });
        let (emitted, added_bytes) = group.insert(tuple, sink)?;
        self.tracker.allocate(added_bytes);
        self.window.record(emitted);
        self.state_bytes += added_bytes;
        Ok(emitted)
    }

    /// Process a whole batch of routed tuples; results go to `sink`.
    /// Returns the number of results emitted.
    ///
    /// The group lookup is paid once per *run* of consecutive
    /// same-partition tuples instead of once per tuple, and
    /// tracker/window updates are paid once per batch. Each run is
    /// handed to [`PartitionGroup::insert_run`], which hashes the run's
    /// join keys in one batched pass before probing. Arrival order is
    /// preserved: one generator tick emits one tuple per stream for the
    /// same key, so runs of consecutive equal partition IDs arise
    /// naturally without sorting, and tuples of different partitions
    /// never interact — results and state are identical to processing
    /// the batch tuple by tuple.
    pub fn process_batch(&mut self, batch: TupleBatch, sink: &mut dyn ResultSink) -> Result<u64> {
        let mut emitted_total = 0u64;
        let mut added_total = 0usize;
        let mut failed = None;
        let mut run_buf: Vec<Tuple> = Vec::new();
        let mut items = batch.into_iter().peekable();
        while let Some(run_pid) = items.peek().map(|(p, _)| *p) {
            run_buf.clear();
            while items.peek().map(|(p, _)| *p) == Some(run_pid) {
                let (_, tuple) = items.next().expect("peeked");
                run_buf.push(tuple);
            }
            let group = self.groups.entry(run_pid).or_insert_with(|| {
                PartitionGroup::new(
                    run_pid,
                    Arc::clone(&self.join_columns),
                    self.cfg.window,
                    self.cfg.layout,
                )
            });
            let (emitted, added, status) = group.insert_run(&mut run_buf, sink);
            emitted_total += emitted;
            added_total += added;
            if let Err(e) = status {
                failed = Some(e);
                break;
            }
        }
        // Account for everything inserted even when a mid-batch tuple
        // failed, so the incremental totals never drift from the state.
        self.tracker.allocate(added_total);
        self.window.record(emitted_total);
        self.state_bytes += added_total;
        match failed {
            Some(e) => Err(e),
            None => Ok(emitted_total),
        }
    }

    /// Number of resident partition groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Accounted bytes across all resident groups (incrementally
    /// maintained; see [`MJoinOperator::recompute_state_bytes`]).
    pub fn state_bytes(&self) -> usize {
        self.state_bytes
    }

    /// Total results produced by this operator instance.
    pub fn total_output(&self) -> u64 {
        self.window.total_output()
    }

    /// Mutable access to the productivity sampling window (the stats
    /// reporter closes windows).
    pub fn window_mut(&mut self) -> &mut ProductivityWindow {
        &mut self.window
    }

    /// Snapshot per-group statistics (for policy ranking), sorted by
    /// partition ID for determinism. Uses the cumulative estimator.
    pub fn group_stats(&self) -> Vec<GroupStats> {
        self.group_stats_with(ProductivityEstimator::Cumulative)
    }

    /// Like [`MJoinOperator::group_stats`], with an explicit
    /// productivity estimator. For the decaying estimator, groups whose
    /// first window has not yet closed fall back to their cumulative
    /// value.
    pub fn group_stats_with(&self, estimator: ProductivityEstimator) -> Vec<GroupStats> {
        let mut stats: Vec<GroupStats> = Vec::with_capacity(self.groups.len());
        stats.extend(self.groups.values().map(|g| {
            let mut s = GroupStats::new(g.pid(), g.bytes(), g.output_count());
            if let ProductivityEstimator::Decaying { .. } = estimator {
                if let Some(ewma) = g.decayed_productivity() {
                    s.productivity = ewma;
                }
            }
            s
        }));
        stats.sort_unstable_by_key(|s| s.pid);
        stats
    }

    /// Fold every group's sampling window into its decayed productivity
    /// estimate (call at the stats-report cadence when using
    /// [`ProductivityEstimator::Decaying`]).
    pub fn close_productivity_windows(&mut self, alpha: f64) {
        for g in self.groups.values_mut() {
            g.close_productivity_window(alpha);
        }
    }

    /// Resident partition IDs (sorted).
    pub fn resident_partitions(&self) -> Vec<PartitionId> {
        let mut pids: Vec<PartitionId> = Vec::with_capacity(self.groups.len());
        pids.extend(self.groups.keys().copied());
        pids.sort_unstable();
        pids
    }

    /// Does this instance currently hold a group for `pid`?
    pub fn has_group(&self, pid: PartitionId) -> bool {
        self.groups.contains_key(&pid)
    }

    /// Remove a group for **spilling**: its snapshot goes to disk, its
    /// memory is released, and its productivity history is discarded —
    /// a future group under the same ID starts fresh (§3: "new tuples
    /// with the same partition ID may continue to accumulate to form a
    /// new partition group"). Returns the snapshot and the accounted
    /// bytes freed (which exceed the snapshot's own tuple bytes by the
    /// per-tuple index overhead).
    pub fn drain_group(&mut self, pid: PartitionId) -> Option<(SpilledGroup, usize)> {
        let group = self.groups.remove(&pid)?;
        let freed = group.bytes();
        self.tracker.release(freed);
        self.state_bytes -= freed;
        self.drain_count += 1;
        let (snapshot, _output) = group.into_snapshot();
        Some((snapshot, freed))
    }

    /// Remove a group for **relocation**: snapshot plus carried
    /// `P_output`, so the receiver resumes its productivity history.
    pub fn extract_group(&mut self, pid: PartitionId) -> Option<(SpilledGroup, u64)> {
        let group = self.groups.remove(&pid)?;
        self.tracker.release(group.bytes());
        self.state_bytes -= group.bytes();
        Some(group.into_snapshot())
    }

    /// Install a relocated group. Fails if a group for the partition is
    /// already resident (the relocation protocol moves whole groups, so
    /// a double-install indicates a protocol violation).
    pub fn install_group(&mut self, snapshot: SpilledGroup, output_count: u64) -> Result<()> {
        let pid = snapshot.partition;
        if self.groups.contains_key(&pid) {
            return Err(DcapeError::state(format!(
                "group {pid} already resident — double install"
            )));
        }
        let group = PartitionGroup::from_snapshot(
            snapshot,
            Arc::clone(&self.join_columns),
            self.cfg.window,
            output_count,
            self.cfg.layout,
        )?;
        self.tracker.allocate(group.bytes());
        self.state_bytes += group.bytes();
        self.groups.insert(pid, group);
        Ok(())
    }

    /// Purge tuples that expired before the purge `horizon` (no-op
    /// without a configured window). Empty groups are removed. Returns
    /// the accounted bytes freed.
    ///
    /// `horizon` is the watermark-driven purge horizon, not the wall
    /// clock: callers pass `min(admitted watermark, oldest timestamp
    /// still buffered in-flight at any split)`, so tuples held at
    /// paused splits during a relocation can never find their join
    /// partners already purged when they replay. Purging strictly by
    /// clock time is what made windowed totals timing-dependent.
    ///
    /// `skip` names partitions that must NOT be purged: partitions
    /// whose disk-resident spill segments live here *or on any other
    /// engine* (tracked cluster-wide across relocations via the
    /// engine's purge-protect set). Their memory tuples may still owe
    /// cross-slice results to spilled partners — dropping them would
    /// lose results, and retiring them to disk would break the cleanup
    /// merge's disjoint-co-residency-slice assumption. Purging a
    /// segment-free partition is always safe: every co-resident partner
    /// already joined at insert time and every post-horizon arrival is
    /// out of window.
    pub fn purge_expired(
        &mut self,
        horizon: dcape_common::time::VirtualTime,
        skip: &dcape_common::hash::FxHashSet<PartitionId>,
    ) -> usize {
        if self.cfg.window.is_none() {
            return 0;
        }
        let mut freed = 0usize;
        self.groups.retain(|pid, g| {
            if skip.contains(pid) {
                return true;
            }
            freed += g.purge_expired(horizon);
            !g.is_empty()
        });
        self.tracker.release(freed);
        self.state_bytes -= freed;
        freed
    }

    /// Number of drain (spill) operations performed.
    pub fn drain_count(&self) -> u64 {
        self.drain_count
    }

    /// Recompute all accounted bytes from scratch and compare with the
    /// incremental accounting — returns the recomputed figure. Used by
    /// debug assertions and tests to catch drift.
    pub fn recompute_state_bytes(&self) -> usize {
        self.groups
            .values()
            .map(PartitionGroup::recompute_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectingSink, CountingSink};
    use dcape_common::ids::StreamId;
    use dcape_common::time::VirtualTime;
    use dcape_common::tuple::TupleBuilder;

    fn op() -> MJoinOperator {
        MJoinOperator::new(MJoinConfig::same_column(3, 0), MemoryTracker::new(10 << 20)).unwrap()
    }

    fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
        TupleBuilder::new(StreamId(stream))
            .seq(seq)
            .ts(VirtualTime::from_millis(seq))
            .value(key)
            .build()
    }

    #[test]
    fn processes_and_tracks_memory() {
        let tracker = MemoryTracker::new(10 << 20);
        let mut op =
            MJoinOperator::new(MJoinConfig::same_column(3, 0), Arc::clone(&tracker)).unwrap();
        let mut sink = CountingSink::new();
        for s in 0..3u8 {
            op.process(PartitionId(1), tpl(s, 0, 1), &mut sink).unwrap();
        }
        assert_eq!(sink.count(), 1);
        assert_eq!(op.group_count(), 1);
        assert_eq!(tracker.used() as usize, op.state_bytes());
        assert_eq!(op.state_bytes(), op.recompute_state_bytes());
    }

    #[test]
    fn groups_are_isolated_by_partition() {
        let mut op = op();
        let mut sink = CountingSink::new();
        // Same key value but different partitions must not join — the
        // operator trusts the router's partition assignment.
        op.process(PartitionId(1), tpl(0, 0, 5), &mut sink).unwrap();
        op.process(PartitionId(2), tpl(1, 0, 5), &mut sink).unwrap();
        op.process(PartitionId(2), tpl(2, 0, 5), &mut sink).unwrap();
        assert_eq!(sink.count(), 0);
        assert_eq!(op.group_count(), 2);
        assert_eq!(
            op.resident_partitions(),
            vec![PartitionId(1), PartitionId(2)]
        );
    }

    #[test]
    fn drain_releases_memory_and_discards_history() {
        let tracker = MemoryTracker::new(10 << 20);
        let mut op =
            MJoinOperator::new(MJoinConfig::same_column(3, 0), Arc::clone(&tracker)).unwrap();
        let mut sink = CountingSink::new();
        for s in 0..3u8 {
            for i in 0..4 {
                op.process(PartitionId(7), tpl(s, i, 1), &mut sink).unwrap();
            }
        }
        let used_before = tracker.used();
        assert!(used_before > 0);
        let (snap, freed) = op.drain_group(PartitionId(7)).unwrap();
        assert_eq!(freed as u64, used_before);
        assert_eq!(snap.tuple_count(), 12);
        assert_eq!(tracker.used(), 0);
        assert!(!op.has_group(PartitionId(7)));
        assert_eq!(op.drain_count(), 1);
        // New tuples re-create the group with a fresh history.
        op.process(PartitionId(7), tpl(0, 99, 1), &mut sink)
            .unwrap();
        let stats = op.group_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].output, 0);
    }

    #[test]
    fn extract_install_round_trip_moves_state_and_stats() {
        let tracker_a = MemoryTracker::new(10 << 20);
        let tracker_b = MemoryTracker::new(10 << 20);
        let mut a =
            MJoinOperator::new(MJoinConfig::same_column(3, 0), Arc::clone(&tracker_a)).unwrap();
        let mut b =
            MJoinOperator::new(MJoinConfig::same_column(3, 0), Arc::clone(&tracker_b)).unwrap();
        let mut sink = CountingSink::new();
        for s in 0..3u8 {
            for i in 0..3 {
                a.process(PartitionId(4), tpl(s, i, 1), &mut sink).unwrap();
            }
        }
        let output_before = a.total_output();
        let (snap, carried) = a.extract_group(PartitionId(4)).unwrap();
        assert_eq!(carried, output_before);
        assert_eq!(tracker_a.used(), 0);
        b.install_group(snap, carried).unwrap();
        assert_eq!(tracker_b.used() as usize, b.state_bytes());
        // Continue joining on the receiver: 3x3 existing matches.
        let mut sink_b = CollectingSink::new();
        b.process(PartitionId(4), tpl(0, 50, 1), &mut sink_b)
            .unwrap();
        assert_eq!(sink_b.len(), 9);
        // Carried stats visible in group stats.
        let stats = b.group_stats();
        assert_eq!(stats[0].output, carried + 9);
    }

    #[test]
    fn double_install_rejected() {
        let mut op = op();
        let snap = SpilledGroup::empty(PartitionId(2), 3);
        op.install_group(snap.clone(), 0).unwrap();
        assert!(op.install_group(snap, 0).is_err());
    }

    #[test]
    fn drain_missing_group_returns_none() {
        let mut op = op();
        assert!(op.drain_group(PartitionId(9)).is_none());
        assert!(op.extract_group(PartitionId(9)).is_none());
    }

    #[test]
    fn batch_matches_per_tuple_path() {
        let mut per_tuple = op();
        let mut batched = op();
        let mut sink_a = CollectingSink::new();
        let mut sink_b = CollectingSink::new();
        let mut batch = TupleBatch::new();
        let mut seq = 0u64;
        // Interleave two partitions so the batched path has to sort.
        for s in 0..3u8 {
            for k in 0..4i64 {
                let pid = PartitionId((k % 2) as u32);
                let t = tpl(s, seq, k);
                per_tuple.process(pid, t.clone(), &mut sink_a).unwrap();
                batch.push(pid, t);
                seq += 1;
            }
        }
        let emitted = batched.process_batch(batch, &mut sink_b).unwrap();
        assert_eq!(emitted as usize, sink_b.len());
        // Same result multiset (order may differ across partitions).
        let ids = |sink: &CollectingSink| {
            let mut v: Vec<Vec<(u8, u64)>> = sink
                .results()
                .iter()
                .map(|r| r.iter().map(|t| (t.stream().0, t.seq())).collect())
                .collect();
            v.sort();
            v
        };
        assert_eq!(ids(&sink_a), ids(&sink_b));
        // Same state, and the incremental total never drifts.
        assert_eq!(per_tuple.state_bytes(), batched.state_bytes());
        assert_eq!(batched.state_bytes(), batched.recompute_state_bytes());
        assert_eq!(per_tuple.total_output(), batched.total_output());
    }

    #[test]
    fn incremental_state_bytes_survives_drain_install_purge() {
        let mut op = op();
        let mut sink = CountingSink::new();
        for s in 0..3u8 {
            for i in 0..5 {
                op.process(PartitionId(1), tpl(s, i, 1), &mut sink).unwrap();
                op.process(PartitionId(2), tpl(s, i, 2), &mut sink).unwrap();
            }
        }
        assert_eq!(op.state_bytes(), op.recompute_state_bytes());
        let (snap, _) = op.drain_group(PartitionId(1)).unwrap();
        assert_eq!(op.state_bytes(), op.recompute_state_bytes());
        op.install_group(snap, 0).unwrap();
        assert_eq!(op.state_bytes(), op.recompute_state_bytes());
        let (snap2, carried) = op.extract_group(PartitionId(2)).unwrap();
        assert_eq!(op.state_bytes(), op.recompute_state_bytes());
        op.install_group(snap2, carried).unwrap();
        assert_eq!(op.state_bytes(), op.recompute_state_bytes());
    }

    #[test]
    fn layouts_produce_identical_operator_behavior() {
        use crate::config::StateLayout;
        let mk = |layout| {
            MJoinOperator::new(
                MJoinConfig::same_column(3, 0).with_layout(layout),
                MemoryTracker::new(10 << 20),
            )
            .unwrap()
        };
        let mut row = mk(StateLayout::Row);
        let mut col = mk(StateLayout::Columnar);
        let mut sink_r = CollectingSink::new();
        let mut sink_c = CollectingSink::new();
        let mut batch_r = TupleBatch::new();
        let mut batch_c = TupleBatch::new();
        let mut seq = 0u64;
        for s in 0..3u8 {
            for k in 0..6i64 {
                let pid = PartitionId((k % 2) as u32);
                let t = tpl(s, seq, k % 3);
                batch_r.push(pid, t.clone());
                batch_c.push(pid, t);
                seq += 1;
            }
        }
        let er = row.process_batch(batch_r, &mut sink_r).unwrap();
        let ec = col.process_batch(batch_c, &mut sink_c).unwrap();
        assert_eq!(er, ec);
        assert_eq!(sink_r.identities(), sink_c.identities());
        assert_eq!(row.state_bytes(), col.state_bytes());
        assert_eq!(col.state_bytes(), col.recompute_state_bytes());
        // Drained snapshots are identical rows in identical order.
        for pid in [PartitionId(0), PartitionId(1)] {
            let (sr, fr) = row.drain_group(pid).unwrap();
            let (sc, fc) = col.drain_group(pid).unwrap();
            assert_eq!(sr, sc);
            assert_eq!(fr, fc);
        }
    }

    #[test]
    fn group_stats_sorted_and_complete() {
        let mut op = op();
        let mut sink = CountingSink::new();
        for pid in [5u32, 1, 3] {
            op.process(PartitionId(pid), tpl(0, pid as u64, pid as i64), &mut sink)
                .unwrap();
        }
        let stats = op.group_stats();
        let pids: Vec<u32> = stats.iter().map(|s| s.pid.0).collect();
        assert_eq!(pids, vec![1, 3, 5]);
    }
}
