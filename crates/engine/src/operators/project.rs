//! Stateless projection operator.

use dcape_common::tuple::Tuple;

/// Projects a tuple onto a subset (or reordering) of its columns.
#[derive(Debug, Clone)]
pub struct Project {
    columns: Vec<usize>,
}

impl Project {
    /// Keep (and order by) the given column indexes.
    pub fn new(columns: Vec<usize>) -> Self {
        Project { columns }
    }

    /// Apply to one tuple. Missing columns project to nothing (the
    /// output simply omits them) — schema validation belongs upstream.
    pub fn process(&self, t: &Tuple) -> Tuple {
        let values = self
            .columns
            .iter()
            .filter_map(|&c| t.get(c).cloned())
            .collect();
        Tuple::new(t.stream(), t.seq(), t.ts(), values)
    }

    /// The projected column indexes.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::tuple::TupleBuilder;
    use dcape_common::value::Value;

    #[test]
    fn projects_and_reorders() {
        let t = TupleBuilder::new(StreamId(1))
            .seq(3)
            .value(10i64)
            .value("x")
            .value(2.5f64)
            .build();
        let p = Project::new(vec![2, 0]);
        let out = p.process(&t);
        assert_eq!(out.arity(), 2);
        assert_eq!(out.get(0), Some(&Value::Double(2.5)));
        assert_eq!(out.get(1), Some(&Value::Int(10)));
        // Identity metadata preserved.
        assert_eq!(out.stream(), StreamId(1));
        assert_eq!(out.seq(), 3);
    }

    #[test]
    fn missing_columns_omitted() {
        let t = TupleBuilder::new(StreamId(0)).value(1i64).build();
        let p = Project::new(vec![0, 5]);
        let out = p.process(&t);
        assert_eq!(out.arity(), 1);
        assert_eq!(p.columns(), &[0, 5]);
    }

    #[test]
    fn empty_projection_yields_empty_tuple() {
        let t = TupleBuilder::new(StreamId(0)).value(1i64).build();
        let out = Project::new(vec![]).process(&t);
        assert_eq!(out.arity(), 0);
    }
}
