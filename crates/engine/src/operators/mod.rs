//! Query operators.
//!
//! [`mjoin`] is the state-intensive operator the paper studies; the
//! stateless [`select`] / [`project`] and the stateful [`aggregate`]
//! round out the algebra used by the example queries (e.g. the intro's
//! Query 1: multi-join + `GROUP BY brokerName` + `min(price)`).

pub mod aggregate;
pub mod mjoin;
pub mod project;
pub mod select;
pub mod union;

pub use aggregate::{AggregateFunction, GroupByAggregate};
pub use mjoin::MJoinOperator;
pub use project::Project;
pub use select::Select;
pub use union::Union;
