//! The union operator (§2): merges the output streams of all instances
//! of a partitioned operator into one stream for further processing.
//!
//! Stateless apart from per-source counters; like split, it "consumes
//! very limited memory and thus tends not to be the bottleneck".

use dcape_common::ids::EngineId;
use dcape_common::tuple::Tuple;

/// Merges per-instance output streams, tracking per-source counts.
#[derive(Debug, Default)]
pub struct Union {
    counts: Vec<u64>,
    total: u64,
}

impl Union {
    /// New union over `num_sources` instance outputs.
    pub fn new(num_sources: usize) -> Self {
        Union {
            counts: vec![0; num_sources],
            total: 0,
        }
    }

    /// Accept one tuple from the given source instance, forwarding it.
    /// Unknown sources are counted in an overflow bucket rather than
    /// dropped (the result still flows).
    pub fn accept(&mut self, source: EngineId, tuple: Tuple) -> Tuple {
        match self.counts.get_mut(source.index()) {
            Some(c) => *c += 1,
            None => {
                self.counts.push(1);
            }
        }
        self.total += 1;
        tuple
    }

    /// Tuples seen from each source.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total tuples merged.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::tuple::TupleBuilder;

    fn t(seq: u64) -> Tuple {
        TupleBuilder::new(StreamId(0)).seq(seq).value(1i64).build()
    }

    #[test]
    fn merges_and_counts_per_source() {
        let mut u = Union::new(2);
        let out = u.accept(EngineId(0), t(1));
        assert_eq!(out.seq(), 1);
        u.accept(EngineId(1), t(2));
        u.accept(EngineId(1), t(3));
        assert_eq!(u.counts(), &[1, 2]);
        assert_eq!(u.total(), 3);
    }

    #[test]
    fn unknown_source_still_flows() {
        let mut u = Union::new(1);
        u.accept(EngineId(5), t(1));
        assert_eq!(u.total(), 1);
    }
}
