//! Streaming group-by aggregation.
//!
//! Non-blocking hash aggregation over a tuple stream: state is one
//! accumulator row per group key, results are read out on demand. The
//! intro's Query 1 (`SELECT brokerName, min(price) … GROUP BY
//! brokerName`) maps onto this operator applied to the multi-join's
//! output; `examples/financial_integration.rs` does exactly that.

use dcape_common::error::{DcapeError, Result};
use dcape_common::hash::FxHashMap;
use dcape_common::tuple::Tuple;
use dcape_common::value::Value;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFunction {
    /// Row count.
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Minimum by total order.
    Min,
    /// Maximum by total order.
    Max,
    /// Arithmetic mean of a numeric column.
    Avg,
}

/// One aggregate expression: a function over a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggExpr {
    /// The function.
    pub func: AggregateFunction,
    /// Input column index (ignored by `Count`).
    pub column: usize,
}

#[derive(Debug, Clone)]
enum Accumulator {
    Count(u64),
    Sum(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

impl Accumulator {
    fn new(func: AggregateFunction) -> Self {
        match func {
            AggregateFunction::Count => Accumulator::Count(0),
            AggregateFunction::Sum => Accumulator::Sum(0.0),
            AggregateFunction::Min => Accumulator::Min(None),
            AggregateFunction::Max => Accumulator::Max(None),
            AggregateFunction::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            Accumulator::Count(c) => *c += 1,
            Accumulator::Sum(s) | Accumulator::Avg { sum: s, .. } => {
                let x = numeric(v)?;
                *s += x;
                if let Accumulator::Avg { n, .. } = self {
                    *n += 1;
                }
            }
            Accumulator::Min(cur) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        let better = match cur {
                            None => true,
                            Some(c) => v.total_cmp(c).is_lt(),
                        };
                        if better {
                            *cur = Some(v.clone());
                        }
                    }
                }
            }
            Accumulator::Max(cur) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        let better = match cur {
                            None => true,
                            Some(c) => v.total_cmp(c).is_gt(),
                        };
                        if better {
                            *cur = Some(v.clone());
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn value(&self) -> Value {
        match self {
            Accumulator::Count(c) => Value::Int(*c as i64),
            Accumulator::Sum(s) => Value::Double(*s),
            Accumulator::Min(v) | Accumulator::Max(v) => v.clone().unwrap_or(Value::Null),
            Accumulator::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *n as f64)
                }
            }
        }
    }
}

fn numeric(v: Option<&Value>) -> Result<f64> {
    match v {
        Some(Value::Int(i)) => Ok(*i as f64),
        Some(Value::Double(d)) => Ok(*d),
        Some(Value::Null) | None => Ok(0.0),
        Some(other) => Err(DcapeError::state(format!(
            "non-numeric value {other} in numeric aggregate"
        ))),
    }
}

/// Hash group-by aggregation operator.
#[derive(Debug)]
pub struct GroupByAggregate {
    key_columns: Vec<usize>,
    exprs: Vec<AggExpr>,
    groups: FxHashMap<Vec<Value>, Vec<Accumulator>>,
    rows_seen: u64,
}

impl GroupByAggregate {
    /// Group by `key_columns`, computing `exprs` per group.
    pub fn new(key_columns: Vec<usize>, exprs: Vec<AggExpr>) -> Self {
        GroupByAggregate {
            key_columns,
            exprs,
            groups: FxHashMap::default(),
            rows_seen: 0,
        }
    }

    /// Fold one input tuple into the aggregation state.
    pub fn process(&mut self, t: &Tuple) -> Result<()> {
        self.rows_seen += 1;
        let key: Vec<Value> = self
            .key_columns
            .iter()
            .map(|&c| t.get(c).cloned().unwrap_or(Value::Null))
            .collect();
        let accs = self.groups.entry(key).or_insert_with(|| {
            self.exprs
                .iter()
                .map(|e| Accumulator::new(e.func))
                .collect()
        });
        for (acc, expr) in accs.iter_mut().zip(&self.exprs) {
            acc.update(t.get(expr.column))?;
        }
        Ok(())
    }

    /// Current results: one row per group — key values then aggregate
    /// values — sorted by key for determinism.
    pub fn results(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = self
            .groups
            .iter()
            .map(|(k, accs)| {
                let mut row = k.clone();
                row.extend(accs.iter().map(Accumulator::value));
                row
            })
            .collect();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if !o.is_eq() {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Rows processed.
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }
}

/// Flatten an m-way join result (one tuple per stream) into a single
/// wide tuple: concatenated values, metadata taken from the first part.
pub fn flatten_result(parts: &[&Tuple]) -> Tuple {
    let mut values = Vec::with_capacity(parts.iter().map(|t| t.arity()).sum());
    for t in parts {
        values.extend(t.values().iter().cloned());
    }
    let first = parts.first().expect("non-empty result");
    Tuple::new(first.stream(), first.seq(), first.ts(), values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::tuple::TupleBuilder;

    fn row(broker: &str, price: f64) -> Tuple {
        TupleBuilder::new(StreamId(0))
            .value(broker)
            .value(price)
            .build()
    }

    fn agg() -> GroupByAggregate {
        GroupByAggregate::new(
            vec![0],
            vec![
                AggExpr {
                    func: AggregateFunction::Min,
                    column: 1,
                },
                AggExpr {
                    func: AggregateFunction::Count,
                    column: 0,
                },
            ],
        )
    }

    #[test]
    fn query1_style_min_price_per_broker() {
        let mut a = agg();
        a.process(&row("alpha", 2.0)).unwrap();
        a.process(&row("alpha", 1.5)).unwrap();
        a.process(&row("beta", 3.0)).unwrap();
        a.process(&row("alpha", 2.5)).unwrap();
        let rows = a.results();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::text("alpha"));
        assert_eq!(rows[0][1], Value::Double(1.5));
        assert_eq!(rows[0][2], Value::Int(3));
        assert_eq!(rows[1][0], Value::text("beta"));
        assert_eq!(rows[1][1], Value::Double(3.0));
        assert_eq!(a.group_count(), 2);
        assert_eq!(a.rows_seen(), 4);
    }

    #[test]
    fn sum_max_avg() {
        let mut a = GroupByAggregate::new(
            vec![0],
            vec![
                AggExpr {
                    func: AggregateFunction::Sum,
                    column: 1,
                },
                AggExpr {
                    func: AggregateFunction::Max,
                    column: 1,
                },
                AggExpr {
                    func: AggregateFunction::Avg,
                    column: 1,
                },
            ],
        );
        for p in [1.0, 2.0, 3.0] {
            a.process(&row("x", p)).unwrap();
        }
        let rows = a.results();
        assert_eq!(rows[0][1], Value::Double(6.0));
        assert_eq!(rows[0][2], Value::Double(3.0));
        assert_eq!(rows[0][3], Value::Double(2.0));
    }

    #[test]
    fn non_numeric_sum_errors() {
        let mut a = GroupByAggregate::new(
            vec![0],
            vec![AggExpr {
                func: AggregateFunction::Sum,
                column: 0, // text column
            }],
        );
        assert!(a.process(&row("x", 1.0)).is_err());
    }

    #[test]
    fn missing_key_column_groups_as_null() {
        let mut a = GroupByAggregate::new(
            vec![7],
            vec![AggExpr {
                func: AggregateFunction::Count,
                column: 0,
            }],
        );
        a.process(&row("x", 1.0)).unwrap();
        a.process(&row("y", 2.0)).unwrap();
        let rows = a.results();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Null);
        assert_eq!(rows[0][1], Value::Int(2));
    }

    #[test]
    fn flatten_concatenates_in_order() {
        let a = TupleBuilder::new(StreamId(0)).seq(1).value(1i64).build();
        let b = TupleBuilder::new(StreamId(1))
            .seq(2)
            .value(2i64)
            .value("x")
            .build();
        let flat = flatten_result(&[&a, &b]);
        assert_eq!(flat.arity(), 3);
        assert_eq!(flat.get(0), Some(&Value::Int(1)));
        assert_eq!(flat.get(1), Some(&Value::Int(2)));
        assert_eq!(flat.get(2), Some(&Value::text("x")));
    }

    #[test]
    fn empty_aggregate_has_no_rows() {
        let a = agg();
        assert!(a.results().is_empty());
        assert_eq!(a.group_count(), 0);
    }
}
