//! Stateless selection (filter) operator.
//!
//! Select and project "consume very limited memory and thus tend not to
//! be the bottleneck" (§2); they exist so the examples can express
//! complete queries like the intro's Query 1.

use dcape_common::tuple::Tuple;
use dcape_common::value::Value;

/// Comparison operators for simple column predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A predicate over one tuple.
pub enum Predicate {
    /// Compare a column against a constant.
    ColumnCmp {
        /// Column index.
        column: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Arbitrary user predicate.
    Custom(Box<dyn Fn(&Tuple) -> bool + Send>),
}

impl std::fmt::Debug for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::ColumnCmp { column, op, value } => {
                write!(f, "col[{column}] {op:?} {value}")
            }
            Predicate::And(a, b) => write!(f, "({a:?} AND {b:?})"),
            Predicate::Or(a, b) => write!(f, "({a:?} OR {b:?})"),
            Predicate::Not(p) => write!(f, "NOT {p:?}"),
            Predicate::Custom(_) => write!(f, "<custom>"),
        }
    }
}

impl Predicate {
    /// Evaluate against a tuple. Missing columns and NULLs fail
    /// comparisons (SQL-ish three-valued logic collapsed to false).
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Predicate::ColumnCmp { column, op, value } => match t.get(*column) {
                None => false,
                Some(v) if v.is_null() || value.is_null() => false,
                Some(v) => {
                    let ord = v.total_cmp(value);
                    match op {
                        CmpOp::Eq => ord.is_eq(),
                        CmpOp::Ne => !ord.is_eq(),
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::Le => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::Ge => ord.is_ge(),
                    }
                }
            },
            Predicate::And(a, b) => a.eval(t) && b.eval(t),
            Predicate::Or(a, b) => a.eval(t) || b.eval(t),
            Predicate::Not(p) => !p.eval(t),
            Predicate::Custom(f) => f(t),
        }
    }
}

/// The selection operator: passes tuples matching the predicate.
#[derive(Debug)]
pub struct Select {
    predicate: Predicate,
    seen: u64,
    passed: u64,
}

impl Select {
    /// Build from a predicate.
    pub fn new(predicate: Predicate) -> Self {
        Select {
            predicate,
            seen: 0,
            passed: 0,
        }
    }

    /// Process one tuple; `Some` if it passes.
    pub fn process(&mut self, t: Tuple) -> Option<Tuple> {
        self.seen += 1;
        if self.predicate.eval(&t) {
            self.passed += 1;
            Some(t)
        } else {
            None
        }
    }

    /// Tuples seen.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Tuples passed.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Observed selectivity.
    pub fn selectivity(&self) -> f64 {
        self.passed as f64 / self.seen.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::tuple::TupleBuilder;

    fn t(price: f64) -> Tuple {
        TupleBuilder::new(StreamId(0))
            .value("EUR")
            .value(price)
            .build()
    }

    #[test]
    fn column_cmp_all_ops() {
        let p = |op| Predicate::ColumnCmp {
            column: 1,
            op,
            value: Value::Double(1.5),
        };
        assert!(p(CmpOp::Eq).eval(&t(1.5)));
        assert!(p(CmpOp::Ne).eval(&t(2.0)));
        assert!(p(CmpOp::Lt).eval(&t(1.0)));
        assert!(p(CmpOp::Le).eval(&t(1.5)));
        assert!(p(CmpOp::Gt).eval(&t(2.0)));
        assert!(p(CmpOp::Ge).eval(&t(1.5)));
        assert!(!p(CmpOp::Eq).eval(&t(2.0)));
    }

    #[test]
    fn missing_column_and_null_fail() {
        let p = Predicate::ColumnCmp {
            column: 9,
            op: CmpOp::Eq,
            value: Value::Int(1),
        };
        assert!(!p.eval(&t(1.0)));
        let null_cmp = Predicate::ColumnCmp {
            column: 0,
            op: CmpOp::Eq,
            value: Value::Null,
        };
        assert!(!null_cmp.eval(&t(1.0)));
    }

    #[test]
    fn boolean_combinators() {
        let lt2 = Predicate::ColumnCmp {
            column: 1,
            op: CmpOp::Lt,
            value: Value::Double(2.0),
        };
        let gt1 = Predicate::ColumnCmp {
            column: 1,
            op: CmpOp::Gt,
            value: Value::Double(1.0),
        };
        let and = Predicate::And(Box::new(lt2), Box::new(gt1));
        assert!(and.eval(&t(1.5)));
        assert!(!and.eval(&t(0.5)));
        let not = Predicate::Not(Box::new(and));
        assert!(not.eval(&t(0.5)));
        let or = Predicate::Or(
            Box::new(Predicate::ColumnCmp {
                column: 1,
                op: CmpOp::Lt,
                value: Value::Double(1.0),
            }),
            Box::new(Predicate::ColumnCmp {
                column: 1,
                op: CmpOp::Gt,
                value: Value::Double(2.0),
            }),
        );
        assert!(or.eval(&t(0.5)));
        assert!(or.eval(&t(2.5)));
        assert!(!or.eval(&t(1.5)));
    }

    #[test]
    fn custom_predicate() {
        let p = Predicate::Custom(Box::new(|t: &Tuple| t.arity() == 2));
        assert!(p.eval(&t(1.0)));
    }

    #[test]
    fn select_counts_and_filters() {
        let mut sel = Select::new(Predicate::ColumnCmp {
            column: 1,
            op: CmpOp::Lt,
            value: Value::Double(1.0),
        });
        assert!(sel.process(t(0.5)).is_some());
        assert!(sel.process(t(1.5)).is_none());
        assert_eq!(sel.seen(), 2);
        assert_eq!(sel.passed(), 1);
        assert!((sel.selectivity() - 0.5).abs() < 1e-12);
    }
}
