//! Probe spans: the join's result-delivery unit.
//!
//! One symmetric-hash-join insert (or one cleanup choice vector)
//! produces a cartesian product of per-stream candidate lists. Instead
//! of walking the product and paying one virtual
//! [`emit`](crate::sink::ResultSink::emit) per combination, the
//! producer hands the whole product to the sink as a [`ProbeSpans`] —
//! one virtual call. A count-only sink can then count in O(m) (product
//! of list lengths) instead of enumerating, and windowed counts are
//! resolved by binary-search trimming with an exact odometer fallback
//! only for straddling spans. Enumerating sinks keep exact per-result
//! semantics through [`ProbeSpans::for_each_valid`], which walks the
//! same odometer order as the pre-span code.

use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::Tuple;

/// Streams per join that the stack-allocated probe machinery covers
/// without heap allocation (the paper's experiments use 3; anything
/// above this falls back to a `Vec`).
pub const INLINE_STREAMS: usize = 8;

/// One per-stream candidate list of a probe product.
///
/// The tuple storage is borrowed from the group (or cleanup segment)
/// for the duration of a single `emit_product` call, so delivery is
/// zero-copy and allocation-free.
#[derive(Clone, Copy, Debug)]
pub enum SpanList<'a> {
    /// A single tuple (the probing tuple's own slot).
    One(&'a Tuple),
    /// A contiguous run of tuples (cleanup segments).
    Slice(&'a [Tuple]),
    /// Match positions into a stream partition's tuple store.
    Indexed {
        /// The stream's tuple storage.
        tuples: &'a [Tuple],
        /// Positions of the matching tuples, in arrival order.
        positions: &'a [u32],
    },
    /// Match positions into a columnar partition's timestamp column —
    /// no row storage behind it. Producers hand this to sinks that
    /// answered [`wants_rows() == false`](crate::sink::ResultSink::wants_rows):
    /// counting needs only lengths and timestamps, so the columnar
    /// state never materializes rows. Calling [`SpanList::get`] on it
    /// is a contract violation and panics.
    TsOnly {
        /// The stream's full timestamp column.
        ts: &'a [VirtualTime],
        /// Positions of the matching tuples, in arrival order.
        positions: &'a [u32],
    },
}

impl<'a> SpanList<'a> {
    /// Number of candidate tuples in this list.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            SpanList::One(_) => 1,
            SpanList::Slice(s) => s.len(),
            SpanList::Indexed { positions, .. } | SpanList::TsOnly { positions, .. } => {
                positions.len()
            }
        }
    }

    /// True when the list holds no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th candidate tuple. Panics on [`SpanList::TsOnly`]
    /// (counting sinks promised through
    /// [`wants_rows`](crate::sink::ResultSink::wants_rows) never to
    /// enumerate).
    #[inline]
    pub fn get(&self, i: usize) -> &'a Tuple {
        match self {
            SpanList::One(t) => t,
            SpanList::Slice(s) => &s[i],
            SpanList::Indexed { tuples, positions } => &tuples[positions[i] as usize],
            SpanList::TsOnly { .. } => {
                panic!("SpanList::TsOnly has no rows: sink broke its wants_rows() == false promise")
            }
        }
    }

    #[inline]
    fn ts_at(&self, i: usize) -> u64 {
        match self {
            SpanList::TsOnly { ts, positions } => ts[positions[i] as usize].as_millis(),
            _ => self.get(i).ts().as_millis(),
        }
    }

    /// Min/max timestamp and ts-nondecreasing flag over the whole list,
    /// in one O(len) pass.
    fn scan_ts(&self) -> (u64, u64, bool) {
        let (mut min, mut max) = (u64::MAX, 0u64);
        let mut sorted = true;
        let mut prev = 0u64;
        for i in 0..self.len() {
            let ts = self.ts_at(i);
            min = min.min(ts);
            max = max.max(ts);
            sorted &= i == 0 || ts >= prev;
            prev = ts;
        }
        (min, max, sorted)
    }

    /// Smallest index in `[0, len)` whose ts is not less than `bound`
    /// (`strict == false`) or strictly greater than it (`strict == true`).
    /// Requires a ts-nondecreasing list.
    fn partition_point(&self, bound: u64, strict: bool) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let ts = self.ts_at(mid);
            let below = if strict { ts <= bound } else { ts < bound };
            if below {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// The full result product of one probe: one [`SpanList`] per input
/// stream (stream order), plus the join's window and a sortedness
/// promise from the producer.
#[derive(Debug)]
pub struct ProbeSpans<'l, 'a> {
    lists: &'l [SpanList<'a>],
    window: Option<VirtualDuration>,
    /// Producer's promise that every list is ts-nondecreasing. When
    /// `false` (e.g. cleanup lists stitched from several engines'
    /// segments), sortedness is re-detected during the extent scan and
    /// unsorted lists fall back to exact counting.
    ts_sorted: bool,
}

impl<'l, 'a> ProbeSpans<'l, 'a> {
    /// Package candidate lists for delivery.
    pub fn new(
        lists: &'l [SpanList<'a>],
        window: Option<VirtualDuration>,
        ts_sorted: bool,
    ) -> Self {
        ProbeSpans {
            lists,
            window,
            ts_sorted,
        }
    }

    /// The per-stream candidate lists, in stream order.
    pub fn lists(&self) -> &'l [SpanList<'a>] {
        self.lists
    }

    /// The join's sliding window, if any.
    pub fn window(&self) -> Option<VirtualDuration> {
        self.window
    }

    /// Size of the unfiltered cartesian product (saturating).
    pub fn total_combinations(&self) -> u64 {
        if self.lists.is_empty() {
            return 0;
        }
        self.lists
            .iter()
            .fold(1u64, |acc, l| acc.saturating_mul(l.len() as u64))
    }

    /// Number of window-valid combinations, computed without
    /// enumeration where possible:
    ///
    /// * no window — the product of list lengths, O(m);
    /// * windowed, global ts range already within W — same product;
    /// * windowed, sorted lists — each list is trimmed by binary search
    ///   to `[L−W, U+W]` (`L` = max per-list min ts, `U` = min per-list
    ///   max ts; every element of a valid combination provably lies in
    ///   that interval), and if the trimmed global range fits in W the
    ///   trimmed product is exact; otherwise only the trimmed bounds
    ///   are enumerated;
    /// * unsorted lists — exact odometer count over the full lists.
    pub fn count_valid(&self) -> u64 {
        let m = self.lists.len();
        if m == 0 || self.lists.iter().any(SpanList::is_empty) {
            return 0;
        }
        let Some(window) = self.window else {
            return self.total_combinations();
        };
        let w = window.as_millis();
        if m <= INLINE_STREAMS {
            let mut stats = [(0u64, 0u64, false); INLINE_STREAMS];
            let mut bounds = [(0usize, 0usize); INLINE_STREAMS];
            let mut counters = [0usize; INLINE_STREAMS];
            self.count_windowed(w, &mut stats[..m], &mut bounds[..m], &mut counters[..m])
        } else {
            let mut stats = vec![(0u64, 0u64, false); m];
            let mut bounds = vec![(0usize, 0usize); m];
            let mut counters = vec![0usize; m];
            self.count_windowed(w, &mut stats, &mut bounds, &mut counters)
        }
    }

    fn count_windowed(
        &self,
        w: u64,
        stats: &mut [(u64, u64, bool)],
        bounds: &mut [(usize, usize)],
        counters: &mut [usize],
    ) -> u64 {
        let (mut global_min, mut global_max) = (u64::MAX, 0u64);
        // L = max of per-list min ts, U = min of per-list max ts.
        let (mut anchor_lo, mut anchor_hi) = (0u64, u64::MAX);
        let mut all_sorted = true;
        for (i, list) in self.lists.iter().enumerate() {
            let s = if self.ts_sorted {
                (list.ts_at(0), list.ts_at(list.len() - 1), true)
            } else {
                list.scan_ts()
            };
            stats[i] = s;
            global_min = global_min.min(s.0);
            global_max = global_max.max(s.1);
            anchor_lo = anchor_lo.max(s.0);
            anchor_hi = anchor_hi.min(s.1);
            all_sorted &= s.2;
        }
        if global_max - global_min <= w {
            return self.total_combinations();
        }
        if !all_sorted {
            // Can't binary-search unsorted lists: exact count over the
            // full extents.
            for (i, list) in self.lists.iter().enumerate() {
                bounds[i] = (0, list.len());
            }
            return self.count_exact(bounds, counters, w);
        }
        // Every element of a window-valid combination lies in
        // [L−W, U+W]: the combination's max is ≥ L (it contains an
        // element from the list whose minimum is L) and its min is ≤ U,
        // so an element below L−W or above U+W would stretch the range
        // past W.
        let lo_ts = anchor_lo.saturating_sub(w);
        let hi_ts = anchor_hi.saturating_add(w);
        let mut product = 1u64;
        let (mut trimmed_min, mut trimmed_max) = (u64::MAX, 0u64);
        for (i, list) in self.lists.iter().enumerate() {
            let lo = list.partition_point(lo_ts, false);
            let hi = list.partition_point(hi_ts, true);
            if lo >= hi {
                return 0;
            }
            bounds[i] = (lo, hi);
            trimmed_min = trimmed_min.min(list.ts_at(lo));
            trimmed_max = trimmed_max.max(list.ts_at(hi - 1));
            product = product.saturating_mul((hi - lo) as u64);
        }
        if trimmed_max - trimmed_min <= w {
            return product;
        }
        self.count_exact(bounds, counters, w)
    }

    /// Odometer count of window-valid combinations over `bounds`.
    fn count_exact(&self, bounds: &[(usize, usize)], counters: &mut [usize], w: u64) -> u64 {
        let m = self.lists.len();
        for (c, b) in counters.iter_mut().zip(bounds) {
            *c = b.0;
        }
        let mut count = 0u64;
        'outer: loop {
            let (mut min, mut max) = (u64::MAX, 0u64);
            for (i, list) in self.lists.iter().enumerate() {
                let ts = list.ts_at(counters[i]);
                min = min.min(ts);
                max = max.max(ts);
            }
            if max - min <= w {
                count += 1;
            }
            for i in (0..m).rev() {
                counters[i] += 1;
                if counters[i] < bounds[i].1 {
                    continue 'outer;
                }
                counters[i] = bounds[i].0;
            }
            break;
        }
        count
    }

    /// Enumerate every window-valid combination in odometer order
    /// (stream order, last list fastest — the same order the
    /// pre-span join produced). `parts[s]` is the tuple from stream `s`.
    pub fn for_each_valid<F: FnMut(&[&Tuple])>(&self, mut f: F) {
        let m = self.lists.len();
        if m == 0 || self.lists.iter().any(SpanList::is_empty) {
            return;
        }
        if m <= INLINE_STREAMS {
            let mut parts = [self.lists[0].get(0); INLINE_STREAMS];
            let mut counters = [0usize; INLINE_STREAMS];
            self.walk(&mut parts[..m], &mut counters[..m], &mut f);
        } else {
            let mut parts: Vec<&Tuple> = self.lists.iter().map(|l| l.get(0)).collect();
            let mut counters = vec![0usize; m];
            self.walk(&mut parts, &mut counters, &mut f);
        }
    }

    fn walk(&self, parts: &mut [&'a Tuple], counters: &mut [usize], f: &mut impl FnMut(&[&Tuple])) {
        let m = self.lists.len();
        // Window check hoisted out of the loop entirely for unwindowed
        // joins.
        match self.window {
            None => 'outer: loop {
                for i in 0..m {
                    parts[i] = self.lists[i].get(counters[i]);
                }
                f(parts);
                for i in (0..m).rev() {
                    counters[i] += 1;
                    if counters[i] < self.lists[i].len() {
                        continue 'outer;
                    }
                    counters[i] = 0;
                }
                break;
            },
            Some(window) => {
                let w = window.as_millis();
                'outer: loop {
                    let (mut min, mut max) = (u64::MAX, 0u64);
                    for i in 0..m {
                        let t = self.lists[i].get(counters[i]);
                        parts[i] = t;
                        let ts = t.ts().as_millis();
                        min = min.min(ts);
                        max = max.max(ts);
                    }
                    if max - min <= w {
                        f(parts);
                    }
                    for i in (0..m).rev() {
                        counters[i] += 1;
                        if counters[i] < self.lists[i].len() {
                            continue 'outer;
                        }
                        counters[i] = 0;
                    }
                    break;
                }
            }
        }
    }
}

/// True when all parts' timestamps fit within the window span (or no
/// window is configured).
#[inline]
pub fn within_window(window: Option<VirtualDuration>, parts: &[&Tuple]) -> bool {
    let Some(window) = window else {
        return true;
    };
    let (mut min, mut max) = (u64::MAX, 0u64);
    for t in parts {
        let ms = t.ts().as_millis();
        min = min.min(ms);
        max = max.max(ms);
    }
    max - min <= window.as_millis()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::time::VirtualTime;
    use dcape_common::tuple::TupleBuilder;

    fn tpl(stream: u8, ts: u64) -> Tuple {
        TupleBuilder::new(StreamId(stream))
            .seq(ts)
            .ts(VirtualTime::from_millis(ts))
            .value(1i64)
            .build()
    }

    fn make_lists(ts_lists: &[&[u64]]) -> Vec<Vec<Tuple>> {
        ts_lists
            .iter()
            .enumerate()
            .map(|(s, tss)| tss.iter().map(|&ts| tpl(s as u8, ts)).collect())
            .collect()
    }

    /// Oracle: enumerate and check every combination with within_window.
    fn brute_count(lists: &[Vec<Tuple>], window: Option<VirtualDuration>) -> u64 {
        let spans: Vec<SpanList> = lists.iter().map(|l| SpanList::Slice(l)).collect();
        let mut n = 0u64;
        ProbeSpans::new(&spans, None, false).for_each_valid(|parts| {
            if within_window(window, parts) {
                n += 1;
            }
        });
        n
    }

    fn check(ts_lists: &[&[u64]], window_ms: Option<u64>, sorted: bool) {
        let lists = make_lists(ts_lists);
        let spans: Vec<SpanList> = lists.iter().map(|l| SpanList::Slice(l)).collect();
        let window = window_ms.map(VirtualDuration::from_millis);
        let probe = ProbeSpans::new(&spans, window, sorted);
        let expect = brute_count(&lists, window);
        assert_eq!(probe.count_valid(), expect, "count_valid vs brute force");
        let mut enumerated = 0u64;
        probe.for_each_valid(|parts| {
            assert!(within_window(window, parts));
            enumerated += 1;
        });
        assert_eq!(enumerated, expect, "for_each_valid vs brute force");
    }

    #[test]
    fn unwindowed_count_is_product() {
        let lists = make_lists(&[&[1, 2], &[5, 6, 7], &[9]]);
        let spans: Vec<SpanList> = lists.iter().map(|l| SpanList::Slice(l)).collect();
        let probe = ProbeSpans::new(&spans, None, true);
        assert_eq!(probe.total_combinations(), 6);
        assert_eq!(probe.count_valid(), 6);
    }

    #[test]
    fn empty_list_counts_zero() {
        let lists = make_lists(&[&[1, 2], &[]]);
        let spans: Vec<SpanList> = lists.iter().map(|l| SpanList::Slice(l)).collect();
        assert_eq!(ProbeSpans::new(&spans, None, true).count_valid(), 0);
        let mut n = 0;
        ProbeSpans::new(&spans, None, true).for_each_valid(|_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn windowed_all_within_uses_product() {
        check(&[&[10, 11], &[12, 13], &[14]], Some(10), true);
    }

    #[test]
    fn windowed_disjoint_counts_zero() {
        check(&[&[0, 1], &[100, 101]], Some(10), true);
    }

    #[test]
    fn windowed_straddling_falls_back_exactly() {
        // Lists overlap partially; some combinations valid, some not.
        check(
            &[&[0, 5, 10, 20], &[8, 15, 30], &[9, 12, 40]],
            Some(10),
            true,
        );
    }

    #[test]
    fn zero_width_window_counts_equal_ts_only() {
        check(&[&[5, 5, 7], &[5, 7], &[5]], Some(0), true);
    }

    #[test]
    fn unsorted_lists_detected_and_exact() {
        // Claimed unsorted; scan must not trust binary search.
        check(&[&[20, 0, 10], &[9, 12, 3]], Some(5), false);
        check(&[&[20, 0, 10], &[9, 12, 3]], Some(15), false);
    }

    #[test]
    fn anchored_trim_handles_disjoint_anchor_interval() {
        // L > U + 2W: no valid combination despite non-empty lists.
        check(&[&[0], &[100]], Some(10), true);
    }

    #[test]
    fn randomized_cross_check() {
        // Deterministic pseudo-random cases over windows and skew.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let m = 2 + (next() % 3) as usize;
            let sorted = case % 2 == 0;
            let lists: Vec<Vec<u64>> = (0..m)
                .map(|_| {
                    let len = 1 + (next() % 6) as usize;
                    let mut v: Vec<u64> = (0..len).map(|_| next() % 50).collect();
                    if sorted {
                        v.sort_unstable();
                    }
                    v
                })
                .collect();
            let refs: Vec<&[u64]> = lists.iter().map(Vec::as_slice).collect();
            let window = if case % 3 == 0 {
                None
            } else {
                Some(next() % 30)
            };
            check(&refs, window, sorted);
        }
    }

    #[test]
    fn ts_only_counts_match_row_spans() {
        // The same candidate sets expressed as row-backed Indexed lists
        // and as rowless TsOnly lists must count identically, windowed
        // and not, sorted and not.
        for (tss, window, sorted) in [
            (vec![vec![0u64, 5, 10, 20], vec![8, 15, 30]], Some(10), true),
            (vec![vec![1, 2, 3], vec![2, 3, 4]], Some(2), true),
            (vec![vec![20, 0, 10], vec![9, 12, 3]], Some(5), false),
            (vec![vec![1, 2], vec![3]], None, true),
        ] {
            let lists = make_lists(&tss.iter().map(Vec::as_slice).collect::<Vec<_>>());
            let cols: Vec<Vec<VirtualTime>> = tss
                .iter()
                .map(|l| l.iter().map(|&t| VirtualTime::from_millis(t)).collect())
                .collect();
            let positions: Vec<Vec<u32>> =
                tss.iter().map(|l| (0..l.len() as u32).collect()).collect();
            let row_spans: Vec<SpanList> = lists.iter().map(|l| SpanList::Slice(l)).collect();
            let ts_spans: Vec<SpanList> = cols
                .iter()
                .zip(&positions)
                .map(|(ts, pos)| SpanList::TsOnly { ts, positions: pos })
                .collect();
            let window = window.map(VirtualDuration::from_millis);
            assert_eq!(
                ProbeSpans::new(&row_spans, window, sorted).count_valid(),
                ProbeSpans::new(&ts_spans, window, sorted).count_valid(),
                "tss={tss:?} window={window:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "wants_rows")]
    fn ts_only_get_panics() {
        let ts = [VirtualTime::from_millis(1)];
        let positions = [0u32];
        let list = SpanList::TsOnly {
            ts: &ts,
            positions: &positions,
        };
        let _ = list.get(0);
    }

    #[test]
    fn more_than_inline_streams_uses_heap_path() {
        let lists: Vec<Vec<Tuple>> = (0..INLINE_STREAMS + 2)
            .map(|s| vec![tpl(s as u8, s as u64)])
            .collect();
        let spans: Vec<SpanList> = lists.iter().map(|l| SpanList::Slice(l)).collect();
        let probe = ProbeSpans::new(&spans, Some(VirtualDuration::from_millis(100)), true);
        assert_eq!(probe.count_valid(), 1);
        let mut n = 0;
        probe.for_each_valid(|parts| {
            assert_eq!(parts.len(), INLINE_STREAMS + 2);
            n += 1;
        });
        assert_eq!(n, 1);
    }
}
