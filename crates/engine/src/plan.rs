//! A small query-plan layer over the operator library.
//!
//! The paper's queries are pipelines around one or more partitioned
//! m-way joins (Query 1: three-way join → group-by min). This module
//! lets applications express such plans declaratively and execute them
//! on a [`QueryEngine`](crate::engine::QueryEngine) without hand-wiring
//! sinks:
//!
//! * per-input-stream **select/project** chains (stateless, §2);
//! * a chain of **join stages** — stage 0 joins the raw input streams;
//!   each later stage joins the previous stage's (flattened) output,
//!   re-partitioned on its own join column, against further fresh
//!   streams, per the paper's footnote that "trees of such operators,
//!   each with its own join columns, can be naturally supported";
//! * post-join select/project, and an optional group-by aggregate.
//!
//! The executor runs on one engine instance; the cluster layer's
//! partitioned execution composes at the stage-input level (each stage's
//! split re-partitions on that stage's column, exactly Figure 2).

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{PartitionId, StreamId};
use dcape_common::partition::Partitioner;
use dcape_common::tuple::Tuple;

use crate::config::MJoinConfig;
use crate::operators::aggregate::{flatten_result, AggExpr, GroupByAggregate};
use crate::operators::mjoin::MJoinOperator;
use crate::operators::project::Project;
use crate::operators::select::Predicate;
use crate::sink::ResultSink;

/// A stateless unary operator in a pipeline.
#[derive(Debug)]
pub enum UnaryOp {
    /// Filter by predicate.
    Select(Predicate),
    /// Project/reorder columns.
    Project(Project),
}

impl UnaryOp {
    fn apply(&self, tuple: Tuple) -> Option<Tuple> {
        match self {
            UnaryOp::Select(p) => p.eval(&tuple).then_some(tuple),
            UnaryOp::Project(p) => Some(p.process(&tuple)),
        }
    }
}

/// One join stage in the chain.
#[derive(Debug)]
pub struct JoinStage {
    /// Number of inputs to this stage's m-way join. Stage 0 consumes
    /// `arity` raw streams; later stages consume the previous stage's
    /// output as input 0 plus `arity - 1` fresh streams.
    pub arity: usize,
    /// Join-column index per input of this stage.
    pub join_columns: Vec<usize>,
    /// Partitions for this stage's split.
    pub num_partitions: u32,
}

/// A declarative plan.
#[derive(Debug)]
pub struct QueryPlan {
    /// Per-raw-stream pre-join pipelines (index = global stream id).
    pub pre: Vec<Vec<UnaryOp>>,
    /// The join chain (at least one stage).
    pub stages: Vec<JoinStage>,
    /// Post-join pipeline over flattened results.
    pub post: Vec<UnaryOp>,
    /// Optional aggregation: (key columns, aggregate expressions).
    pub aggregate: Option<(Vec<usize>, Vec<AggExpr>)>,
}

impl QueryPlan {
    /// A single-stage plan joining `streams` inputs on `column`.
    pub fn simple_join(streams: usize, column: usize, num_partitions: u32) -> Self {
        QueryPlan {
            pre: (0..streams).map(|_| Vec::new()).collect(),
            stages: vec![JoinStage {
                arity: streams,
                join_columns: vec![column; streams],
                num_partitions,
            }],
            post: Vec::new(),
            aggregate: None,
        }
    }

    /// Total number of raw input streams the plan consumes.
    pub fn num_raw_streams(&self) -> usize {
        let mut n = 0;
        for (i, s) in self.stages.iter().enumerate() {
            n += if i == 0 { s.arity } else { s.arity - 1 };
        }
        n
    }

    /// Validate the plan's internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.stages.is_empty() {
            return Err(DcapeError::config("plan needs at least one join stage"));
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.arity < 2 {
                return Err(DcapeError::config(format!("stage {i}: arity must be >= 2")));
            }
            if s.join_columns.len() != s.arity {
                return Err(DcapeError::config(format!(
                    "stage {i}: join_columns length != arity"
                )));
            }
            if s.num_partitions == 0 {
                return Err(DcapeError::config(format!("stage {i}: zero partitions")));
            }
        }
        if self.pre.len() != self.num_raw_streams() {
            return Err(DcapeError::config(format!(
                "pre pipelines: got {}, plan consumes {} raw streams",
                self.pre.len(),
                self.num_raw_streams()
            )));
        }
        Ok(())
    }
}

/// Collects one stage's join results so they can be fed to the next
/// stage after the current insert completes.
#[derive(Debug, Default)]
struct StageBuffer {
    results: Vec<Tuple>,
}

impl ResultSink for StageBuffer {
    fn emit(&mut self, parts: &[&Tuple]) {
        self.results.push(flatten_result(parts));
    }
}

/// Executes a [`QueryPlan`] on in-process operator instances.
///
/// For partitioned/distributed execution the cluster drivers own the
/// stage-0 split; this executor is the single-instance reference used by
/// examples and tests.
#[derive(Debug)]
pub struct PlanExecutor {
    plan: QueryPlan,
    joins: Vec<MJoinOperator>,
    partitioners: Vec<Partitioner>,
    /// Map raw stream id → (stage index, input index within stage).
    raw_inputs: Vec<(usize, usize)>,
    aggregate: Option<GroupByAggregate>,
    results_out: u64,
    intermediate_seq: u64,
}

impl PlanExecutor {
    /// Build an executor; validates the plan.
    pub fn new(plan: QueryPlan) -> Result<Self> {
        plan.validate()?;
        let tracker = dcape_common::mem::MemoryTracker::new(u64::MAX / 2);
        let mut joins = Vec::with_capacity(plan.stages.len());
        let mut partitioners = Vec::with_capacity(plan.stages.len());
        for stage in &plan.stages {
            joins.push(MJoinOperator::new(
                MJoinConfig {
                    num_streams: stage.arity,
                    join_columns: stage.join_columns.clone(),
                    window: None,
                    layout: crate::config::StateLayout::default(),
                },
                std::sync::Arc::clone(&tracker),
            )?);
            partitioners.push(Partitioner::hash(stage.num_partitions));
        }
        let mut raw_inputs = Vec::new();
        for (si, stage) in plan.stages.iter().enumerate() {
            let first_fresh = if si == 0 { 0 } else { 1 };
            for input in first_fresh..stage.arity {
                raw_inputs.push((si, input));
            }
        }
        let aggregate = plan
            .aggregate
            .as_ref()
            .map(|(keys, exprs)| GroupByAggregate::new(keys.clone(), exprs.clone()));
        Ok(PlanExecutor {
            plan,
            joins,
            partitioners,
            raw_inputs,
            aggregate,
            results_out: 0,
            intermediate_seq: 0,
        })
    }

    /// Final results produced (post-pipeline, pre-aggregation rows).
    pub fn results_out(&self) -> u64 {
        self.results_out
    }

    /// The aggregation state, if the plan aggregates.
    pub fn aggregate(&self) -> Option<&GroupByAggregate> {
        self.aggregate.as_ref()
    }

    /// Total state bytes across all join stages.
    pub fn state_bytes(&self) -> usize {
        self.joins.iter().map(MJoinOperator::state_bytes).sum()
    }

    /// Feed one raw input tuple (its `stream()` is the global raw
    /// stream id). Final results are delivered to `sink`.
    pub fn feed(&mut self, tuple: Tuple, sink: &mut dyn ResultSink) -> Result<()> {
        let raw = tuple.stream().index();
        let &(stage, input) = self
            .raw_inputs
            .get(raw)
            .ok_or_else(|| DcapeError::state(format!("raw stream {raw} not in plan")))?;
        // Pre-join pipeline.
        let mut t = tuple;
        for op in &self.plan.pre[raw] {
            match op.apply(t) {
                Some(next) => t = next,
                None => return Ok(()),
            }
        }
        // Retag to the stage-local input index.
        let t = retag(t, input as u8);
        self.insert_into_stage(stage, t, sink)
    }

    fn insert_into_stage(
        &mut self,
        stage: usize,
        tuple: Tuple,
        sink: &mut dyn ResultSink,
    ) -> Result<()> {
        let key = tuple
            .get(self.plan.stages[stage].join_columns[tuple.stream().index()])
            .ok_or_else(|| DcapeError::state("tuple lacks stage join column"))?;
        let pid: PartitionId = self.partitioners[stage].partition_of(key);
        let mut buffer = StageBuffer::default();
        self.joins[stage].process(pid, tuple, &mut buffer)?;
        for result in buffer.results {
            if stage + 1 < self.plan.stages.len() {
                // Feed the next stage as its input 0.
                let seq = self.intermediate_seq;
                self.intermediate_seq += 1;
                let next = Tuple::new(StreamId(0), seq, result.ts(), result.values().to_vec());
                self.insert_into_stage(stage + 1, next, sink)?;
            } else {
                self.deliver(result, sink)?;
            }
        }
        Ok(())
    }

    fn deliver(&mut self, mut row: Tuple, sink: &mut dyn ResultSink) -> Result<()> {
        for op in &self.plan.post {
            match op.apply(row) {
                Some(next) => row = next,
                None => return Ok(()),
            }
        }
        if let Some(agg) = &mut self.aggregate {
            agg.process(&row)?;
        }
        self.results_out += 1;
        sink.emit(&[&row]);
        Ok(())
    }
}

fn retag(t: Tuple, stream: u8) -> Tuple {
    if t.stream().0 == stream {
        return t;
    }
    Tuple::new(StreamId(stream), t.seq(), t.ts(), t.values().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::aggregate::AggregateFunction;
    use crate::operators::select::{CmpOp, Predicate};
    use crate::sink::CountingSink;
    use dcape_common::time::VirtualTime;
    use dcape_common::value::Value;

    fn t(stream: u8, seq: u64, values: Vec<Value>) -> Tuple {
        Tuple::new(StreamId(stream), seq, VirtualTime::from_millis(seq), values)
    }

    #[test]
    fn simple_join_plan_counts_matches() {
        let plan = QueryPlan::simple_join(3, 0, 8);
        let mut exec = PlanExecutor::new(plan).unwrap();
        let mut sink = CountingSink::new();
        for seq in 0..4u64 {
            for s in 0..3u8 {
                exec.feed(t(s, seq, vec![Value::Int(1)]), &mut sink)
                    .unwrap();
            }
        }
        assert_eq!(sink.count(), 64);
        assert_eq!(exec.results_out(), 64);
        assert!(exec.state_bytes() > 0);
    }

    #[test]
    fn pre_select_filters_one_input() {
        let mut plan = QueryPlan::simple_join(2, 0, 4);
        plan.pre[1] = vec![UnaryOp::Select(Predicate::ColumnCmp {
            column: 1,
            op: CmpOp::Gt,
            value: Value::Int(10),
        })];
        let mut exec = PlanExecutor::new(plan).unwrap();
        let mut sink = CountingSink::new();
        exec.feed(t(0, 0, vec![Value::Int(1), Value::Int(0)]), &mut sink)
            .unwrap();
        exec.feed(t(1, 0, vec![Value::Int(1), Value::Int(5)]), &mut sink)
            .unwrap(); // filtered out
        exec.feed(t(1, 1, vec![Value::Int(1), Value::Int(20)]), &mut sink)
            .unwrap(); // passes
        assert_eq!(sink.count(), 1);
    }

    #[test]
    fn post_project_and_aggregate() {
        let mut plan = QueryPlan::simple_join(2, 0, 4);
        // Flattened join row: [k, price, k, broker]; project broker+price
        // then group by broker with min(price).
        plan.post = vec![UnaryOp::Project(Project::new(vec![3, 1]))];
        plan.aggregate = Some((
            vec![0],
            vec![AggExpr {
                func: AggregateFunction::Min,
                column: 1,
            }],
        ));
        let mut exec = PlanExecutor::new(plan).unwrap();
        let mut sink = CountingSink::new();
        exec.feed(t(0, 0, vec![Value::Int(1), Value::Double(3.0)]), &mut sink)
            .unwrap();
        exec.feed(t(0, 1, vec![Value::Int(1), Value::Double(2.0)]), &mut sink)
            .unwrap();
        exec.feed(t(1, 0, vec![Value::Int(1), Value::text("bkr")]), &mut sink)
            .unwrap();
        assert_eq!(sink.count(), 2);
        let rows = exec.aggregate().unwrap().results();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::text("bkr"));
        assert_eq!(rows[0][1], Value::Double(2.0));
    }

    #[test]
    fn two_stage_join_chain() {
        // Stage 0: join streams 0,1 on column 0.
        // Stage 1: join stage-0 output (flattened, column 0 still the
        // key) with raw stream 2 on column 0.
        let plan = QueryPlan {
            pre: vec![Vec::new(), Vec::new(), Vec::new()],
            stages: vec![
                JoinStage {
                    arity: 2,
                    join_columns: vec![0, 0],
                    num_partitions: 4,
                },
                JoinStage {
                    arity: 2,
                    join_columns: vec![0, 0],
                    num_partitions: 4,
                },
            ],
            post: Vec::new(),
            aggregate: None,
        };
        assert_eq!(plan.num_raw_streams(), 3);
        let mut exec = PlanExecutor::new(plan).unwrap();
        let mut sink = CountingSink::new();
        // 2 x 2 x 2 tuples, all key 7 => stage0: 4 pairs; stage1: each
        // pair joins 2 stream-2 tuples => 8 results. Order of arrival
        // must not matter for the total.
        for seq in 0..2u64 {
            for s in 0..3u8 {
                exec.feed(t(s, seq, vec![Value::Int(7)]), &mut sink)
                    .unwrap();
            }
        }
        assert_eq!(sink.count(), 8);
    }

    #[test]
    fn invalid_plans_rejected() {
        let mut plan = QueryPlan::simple_join(3, 0, 8);
        plan.stages[0].arity = 1;
        assert!(PlanExecutor::new(plan).is_err());

        let mut plan = QueryPlan::simple_join(3, 0, 8);
        plan.stages.clear();
        assert!(PlanExecutor::new(plan).is_err());

        let mut plan = QueryPlan::simple_join(3, 0, 8);
        plan.pre.pop();
        assert!(PlanExecutor::new(plan).is_err());

        let mut plan = QueryPlan::simple_join(2, 0, 8);
        plan.stages[0].num_partitions = 0;
        assert!(PlanExecutor::new(plan).is_err());
    }

    #[test]
    fn unknown_raw_stream_is_an_error() {
        let plan = QueryPlan::simple_join(2, 0, 4);
        let mut exec = PlanExecutor::new(plan).unwrap();
        let mut sink = CountingSink::new();
        assert!(exec.feed(t(5, 0, vec![Value::Int(1)]), &mut sink).is_err());
    }
}
