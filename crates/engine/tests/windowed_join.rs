//! Sliding-window join semantics (the intro's infinite-stream regime:
//! "the techniques we study … could also be applied to cases with
//! infinite data streams as long as operators have finite window
//! sizes").
//!
//! Invariants under test:
//! * results are exactly the same-key combinations whose timestamps all
//!   fit within the window (oracle comparison);
//! * purging frees the memory of expired tuples without affecting
//!   results;
//! * spill + cleanup stay exact for windowed queries — expired
//!   cross-slice combinations are NOT resurrected by the cleanup merge.

use dcape_common::ids::{EngineId, PartitionId, StreamId};
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::{Tuple, TupleBuilder};
use dcape_engine::config::EngineConfig;
use dcape_engine::engine::QueryEngine;
use dcape_engine::sink::{CollectingSink, CountingSink};

fn tpl(stream: u8, seq: u64, key: i64, ts_ms: u64) -> Tuple {
    TupleBuilder::new(StreamId(stream))
        .seq(seq)
        .ts(VirtualTime::from_millis(ts_ms))
        .value(key)
        .pad(64)
        .build()
}

/// Windowed reference join: all same-key triples whose max-min ts fits
/// the window.
fn windowed_reference(all: &[Tuple], window_ms: u64) -> Vec<Vec<(u8, u64)>> {
    let mut out = Vec::new();
    for a in all.iter().filter(|t| t.stream().0 == 0) {
        for b in all.iter().filter(|t| t.stream().0 == 1) {
            for c in all.iter().filter(|t| t.stream().0 == 2) {
                if a.get(0) != b.get(0) || b.get(0) != c.get(0) {
                    continue;
                }
                let ts = [a.ts().as_millis(), b.ts().as_millis(), c.ts().as_millis()];
                let span = ts.iter().max().unwrap() - ts.iter().min().unwrap();
                if span <= window_ms {
                    out.push(vec![(0, a.seq()), (1, b.seq()), (2, c.seq())]);
                }
            }
        }
    }
    out.sort();
    out
}

fn windowed_engine(window_ms: u64, threshold: u64) -> QueryEngine {
    let mut cfg = EngineConfig::three_way(1 << 30, threshold);
    cfg.join = cfg
        .join
        .with_window(VirtualDuration::from_millis(window_ms));
    // Check the spill trigger (and purge) frequently relative to the
    // sub-second windows these tests use.
    cfg.ss_timer = VirtualDuration::from_millis(200);
    QueryEngine::in_memory(EngineId(0), cfg).unwrap()
}

/// Deterministic pseudo-random workload across partitions/keys/time.
fn workload(n: u64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let mix = i
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let stream = (mix % 3) as u8;
            let key = ((mix >> 8) % 6) as i64;
            tpl(stream, i, key, i * 40) // 40 ms apart
        })
        .collect()
}

#[test]
fn windowed_join_matches_oracle() {
    let window_ms = 400; // ~10 tuples wide
    let all = workload(300);
    let mut engine = windowed_engine(window_ms, 1 << 29);
    let mut sink = CollectingSink::new();
    for t in &all {
        let pid = PartitionId((t.get(0).unwrap().as_int().unwrap() % 4) as u32);
        engine.process(pid, t.clone(), &mut sink).unwrap();
    }
    assert_eq!(sink.identities(), windowed_reference(&all, window_ms));
}

#[test]
fn purging_frees_memory_without_changing_results() {
    let window_ms = 400;
    let all = workload(400);
    // Engine A: no purging (never ticks).
    let mut a = windowed_engine(window_ms, 1 << 29);
    // Engine B: purges on every tick.
    let mut b = windowed_engine(window_ms, 1 << 29);
    let mut sink_a = CountingSink::new();
    let mut sink_b = CountingSink::new();
    for t in &all {
        let pid = PartitionId((t.get(0).unwrap().as_int().unwrap() % 4) as u32);
        a.process(pid, t.clone(), &mut sink_a).unwrap();
        b.process(pid, t.clone(), &mut sink_b).unwrap();
        b.tick(t.ts()).unwrap();
    }
    assert_eq!(sink_a.count(), sink_b.count(), "purging changed results");
    assert!(
        b.memory_used() < a.memory_used() / 4,
        "purging should bound state: {} vs {}",
        b.memory_used(),
        a.memory_used()
    );
}

#[test]
fn windowed_spill_plus_cleanup_is_exact() {
    let window_ms = 600;
    let all = workload(400);
    // Tiny threshold: spills happen while the window is live.
    let mut engine = windowed_engine(window_ms, 1 << 10);
    let mut runtime = CollectingSink::new();
    for t in &all {
        let pid = PartitionId((t.get(0).unwrap().as_int().unwrap() % 4) as u32);
        engine.process(pid, t.clone(), &mut runtime).unwrap();
        engine.tick(t.ts()).unwrap();
    }
    assert!(
        !engine.spill_history().is_empty(),
        "threshold must force spills for this test"
    );
    let mut cleanup = CollectingSink::new();
    engine.cleanup(&mut cleanup).unwrap();
    let mut produced = runtime.identities();
    produced.extend(cleanup.identities());
    produced.sort();
    let reference = windowed_reference(&all, window_ms);
    assert_eq!(
        produced.len(),
        reference.len(),
        "windowed spill/cleanup produced wrong cardinality"
    );
    assert_eq!(produced, reference);
}

#[test]
fn zero_width_window_only_matches_same_timestamp() {
    let mut engine = windowed_engine(0, 1 << 29);
    let mut sink = CountingSink::new();
    let pid = PartitionId(0);
    // Same timestamp: joins.
    engine.process(pid, tpl(0, 0, 1, 100), &mut sink).unwrap();
    engine.process(pid, tpl(1, 1, 1, 100), &mut sink).unwrap();
    engine.process(pid, tpl(2, 2, 1, 100), &mut sink).unwrap();
    assert_eq!(sink.count(), 1);
    // Different timestamp: no new joins.
    engine.process(pid, tpl(0, 3, 1, 101), &mut sink).unwrap();
    assert_eq!(sink.count(), 1);
}

#[test]
fn unwindowed_engine_unaffected() {
    // Regression guard: window = None behaves exactly as before.
    let all = workload(200);
    let mut engine =
        QueryEngine::in_memory(EngineId(0), EngineConfig::three_way(1 << 30, 1 << 29)).unwrap();
    let mut sink = CountingSink::new();
    for t in &all {
        let pid = PartitionId((t.get(0).unwrap().as_int().unwrap() % 4) as u32);
        engine.process(pid, t.clone(), &mut sink).unwrap();
        engine.tick(t.ts()).unwrap();
    }
    let unwindowed_reference = windowed_reference(&all, u64::MAX);
    assert_eq!(sink.count() as usize, unwindowed_reference.len());
}
