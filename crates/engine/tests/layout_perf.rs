//! Ignored-by-default perf probes for the row vs columnar layouts.
//!
//! Not assertions — these print per-phase wall times so a layout
//! regression can be localized to insert vs probe cost:
//!
//! ```text
//! cargo test -q -p dcape-engine --release --test layout_perf -- --ignored --nocapture
//! ```

use std::time::Instant;

use dcape_common::ids::{PartitionId, StreamId};
use dcape_common::mem::MemoryTracker;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::{Tuple, TupleBuilder};
use dcape_engine::config::{MJoinConfig, StateLayout};
use dcape_engine::operators::mjoin::MJoinOperator;
use dcape_engine::sink::CountingSink;

fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
    TupleBuilder::new(StreamId(stream))
        .seq(seq)
        .ts(VirtualTime::from_millis(seq * 30))
        .value(key)
        .build()
}

/// Prebuilt workload, cloned per pass — keeps tuple construction and
/// allocator effects out of the timed region (the row arm retains
/// tuples while the columnar arm frees them, so in-loop construction
/// costs would differ per arm and poison the comparison).
fn workload(join_keys: bool, rounds: u64) -> Vec<(PartitionId, Tuple)> {
    let mut out = Vec::with_capacity(rounds as usize * 3);
    for seq in 0..rounds {
        // Disjoint keys per stream = pure insert (probes bail on empty
        // sides); shared keys = insert + probe/count.
        for s in 0..3u8 {
            let key = if join_keys {
                (seq % 150) as i64
            } else {
                (seq % 150) as i64 * 3 + i64::from(s)
            };
            out.push((PartitionId((key as u32) % 120), tpl(s, seq, key)));
        }
    }
    out
}

fn run(layout: StateLayout, windowed: bool, tuples: &[(PartitionId, Tuple)]) -> (f64, u64) {
    let mut cfg = MJoinConfig::same_column(3, 0).with_layout(layout);
    if windowed {
        cfg = cfg.with_window(VirtualDuration::from_secs(90));
    }
    let mut op = MJoinOperator::new(cfg, MemoryTracker::new(u64::MAX)).unwrap();
    let mut sink = CountingSink::new();
    let start = Instant::now();
    for (pid, t) in tuples {
        op.process(*pid, t.clone(), &mut sink).unwrap();
    }
    (start.elapsed().as_secs_f64(), sink.count())
}

/// Paper-shaped workload: uniform keys over a 10k space (join rate 3 on
/// a 30k tuple range), `Pad(1024)` payloads, 120 partitions — the state
/// shape of the fig5 paper-scale end-to-end point.
#[test]
#[ignore = "perf probe, run manually with --nocapture"]
fn paper_shape() {
    const ROUNDS: u64 = 40_000;
    let mut tuples = Vec::with_capacity(ROUNDS as usize * 3);
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    for variant in ["join", "disjoint", "join-nopad", "disjoint-nopad"] {
        let join = variant.starts_with("join");
        let pad = !variant.ends_with("nopad");
        tuples.clear();
        for seq in 0..ROUNDS {
            for s in 0..3u8 {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mut key = ((rng >> 33) % 10_000) as i64;
                if !join {
                    key = key * 3 + i64::from(s);
                }
                let mut b = TupleBuilder::new(StreamId(s))
                    .seq(seq)
                    .ts(VirtualTime::from_millis(seq * 30))
                    .value(key);
                if pad {
                    b = b.pad(1024);
                }
                tuples.push((PartitionId((key as u32) % 120), b.build()));
            }
        }
        for layout in [StateLayout::Row, StateLayout::Columnar] {
            run(layout, false, &tuples);
            let mut best = f64::MAX;
            let mut count = 0;
            for _ in 0..5 {
                let (t, c) = run(layout, false, &tuples);
                best = best.min(t);
                count = c;
            }
            println!("paper-shape {variant:>14} {layout:?}: {best:.4}s (results {count})");
        }
    }
}

#[test]
#[ignore = "perf probe, run manually with --nocapture"]
fn phase_times() {
    const ROUNDS: u64 = 24_000;
    for (label, windowed, join_keys) in [
        ("insert-only (disjoint keys)", false, false),
        ("insert+count unwindowed", false, true),
        ("insert+count windowed 90s", true, true),
    ] {
        let tuples = workload(join_keys, ROUNDS);
        for layout in [StateLayout::Row, StateLayout::Columnar] {
            // Warm-up then measure best-of-5.
            run(layout, windowed, &tuples);
            let mut best = f64::MAX;
            let mut count = 0;
            for _ in 0..5 {
                let (t, c) = run(layout, windowed, &tuples);
                best = best.min(t);
                count = c;
            }
            println!("{label:>28} {layout:?}: {best:.4}s (results {count})");
        }
    }
}
