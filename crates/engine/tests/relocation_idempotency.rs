//! Engine-side relocation idempotency and crash recovery (the chaos
//! layer's hardening contract):
//!
//! * a duplicated `InstallStates` is a no-op that still deserves an ack;
//! * an aborted round restores the exact pre-round state on both ends
//!   (sender reinstalls its retained copy, receiver uninstalls);
//! * a crash-restart on the receiver loses only the uncommitted
//!   installation — the sender's retained copy stays authoritative;
//! * stale (closed-round) messages are recognized as such.

use dcape_common::ids::{EngineId, PartitionId, StreamId};
use dcape_common::time::VirtualTime;
use dcape_common::tuple::{Tuple, TupleBuilder};
use dcape_engine::config::EngineConfig;
use dcape_engine::engine::QueryEngine;
use dcape_engine::sink::CountingSink;

fn tpl(stream: u8, seq: u64, key: i64, ts_ms: u64) -> Tuple {
    TupleBuilder::new(StreamId(stream))
        .seq(seq)
        .ts(VirtualTime::from_millis(ts_ms))
        .value(key)
        .pad(64)
        .build()
}

fn engine(id: u16) -> QueryEngine {
    QueryEngine::in_memory(EngineId(id), EngineConfig::three_way(1 << 30, 1 << 29)).unwrap()
}

/// Load a few keys into partitions `base..base+4` of the engine
/// (ownership is disjoint across engines, so each gets its own range).
fn load_at(e: &mut QueryEngine, n: u64, base: u32) -> u64 {
    let mut sink = CountingSink::new();
    for i in 0..n {
        let key = (i % 6) as i64;
        let pid = PartitionId(base + (key % 4) as u32);
        e.process(pid, tpl((i % 3) as u8, i, key, i * 10), &mut sink)
            .unwrap();
    }
    sink.count()
}

fn load(e: &mut QueryEngine, n: u64) -> u64 {
    load_at(e, n, 0)
}

#[test]
fn duplicate_install_is_a_noop() {
    let mut sender = engine(0);
    let mut receiver = engine(1);
    load(&mut sender, 60);
    let parts = sender.select_parts_to_move(1 << 20);
    assert!(!parts.is_empty());
    let groups = sender.begin_outbound(7, &parts);

    assert!(receiver
        .install_groups_for_round(7, groups.clone())
        .unwrap());
    let after_first = receiver.memory_used();
    // The duplicated InstallStates re-delivers the identical payload.
    assert!(!receiver.install_groups_for_round(7, groups).unwrap());
    assert_eq!(
        receiver.memory_used(),
        after_first,
        "duplicate install must not double state"
    );
}

#[test]
fn retried_send_states_reships_the_same_copy() {
    let mut sender = engine(0);
    load(&mut sender, 60);
    let parts = sender.select_parts_to_move(1 << 20);
    let first = sender.begin_outbound(3, &parts);
    let freed = sender.memory_used();
    // A retry of SendStates for the same round must not extract again
    // (the groups are already gone from the join) — it re-ships.
    let second = sender.begin_outbound(3, &parts);
    assert_eq!(first.len(), second.len());
    assert_eq!(sender.memory_used(), freed);
}

#[test]
fn abort_restores_both_ends_exactly() {
    let mut sender = engine(0);
    let mut receiver = engine(1);
    load(&mut sender, 90);
    let before_mem = sender.memory_used();
    let before_out = sender.total_output();

    let parts = sender.select_parts_to_move(1 << 20);
    let groups = sender.begin_outbound(1, &parts);
    assert!(receiver.install_groups_for_round(1, groups).unwrap());
    assert!(receiver.memory_used() > 0);

    // Retries exhausted: the coordinator aborts the round.
    let discarded = receiver.abort_inbound(1).unwrap();
    assert_eq!(discarded, parts.len());
    assert_eq!(receiver.memory_used(), 0, "abort must uninstall");
    let reinstalled = sender.abort_outbound(1).unwrap();
    assert_eq!(reinstalled, parts.len());
    assert_eq!(sender.memory_used(), before_mem, "abort must restore state");
    assert_eq!(sender.total_output(), before_out);
    sender.assert_accounting_consistent().unwrap();

    // The round is closed on both ends: stragglers are stale.
    assert!(sender.is_stale_round(1));
    assert!(receiver.is_stale_round(1));
    assert!(!receiver.install_groups_for_round(1, vec![]).unwrap());
}

#[test]
fn crash_restart_wipes_only_uncommitted_inbound() {
    let mut sender = engine(0);
    let mut receiver = engine(1);
    load(&mut sender, 60);
    load_at(&mut receiver, 30, 4);
    let own_state = receiver.memory_used();

    let parts = sender.select_parts_to_move(1 << 20);
    let groups = sender.begin_outbound(5, &parts);
    assert!(receiver.install_groups_for_round(5, groups).unwrap());
    assert!(receiver.memory_used() > own_state);

    // Crash after step 5, before the ack lands: the uncommitted
    // installation is gone, the receiver's own state survives.
    let wiped = receiver.crash_restart().unwrap();
    assert_eq!(wiped, parts.len());
    assert_eq!(receiver.memory_used(), own_state);
    receiver.assert_accounting_consistent().unwrap();

    // The sender still holds the authoritative copy: the abort path
    // brings the state home without loss.
    assert_eq!(sender.abort_outbound(5).unwrap(), parts.len());
    sender.assert_accounting_consistent().unwrap();
}

#[test]
fn commit_closes_the_round_and_drops_the_copy() {
    let mut sender = engine(0);
    let mut receiver = engine(1);
    load(&mut sender, 60);
    let parts = sender.select_parts_to_move(1 << 20);
    let groups = sender.begin_outbound(2, &parts);
    assert!(receiver.install_groups_for_round(2, groups).unwrap());

    sender.commit_outbound(2);
    receiver.commit_inbound(2);
    // After commit, an abort reinstalls nothing — the copy is gone and
    // the receiver keeps the (now permanent) state.
    assert_eq!(sender.abort_outbound(2).unwrap(), 0);
    assert_eq!(receiver.abort_inbound(2).unwrap(), 0);
    assert!(receiver.memory_used() > 0);
    assert!(sender.is_stale_round(2) && receiver.is_stale_round(2));
}
