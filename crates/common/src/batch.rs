//! Batched tuple transport.
//!
//! A [`TupleBatch`] carries one generator tick's worth of routed tuples —
//! `(PartitionId, Tuple)` pairs in arrival order — so the dataflow pays
//! one channel send / one dispatch per engine per tick instead of one per
//! tuple. The batch boundary is purely a transport grouping: consumers
//! must preserve the contained order (or any stable reordering by
//! partition, which keeps intra-stream, intra-partition order intact).

use crate::ids::PartitionId;
use crate::tuple::Tuple;

/// An ordered batch of routed tuples, the unit of inter-operator
/// transfer in the batched dataflow.
#[derive(Debug, Clone, Default)]
pub struct TupleBatch {
    items: Vec<(PartitionId, Tuple)>,
}

impl TupleBatch {
    /// New empty batch.
    pub fn new() -> Self {
        TupleBatch::default()
    }

    /// New empty batch with room for `n` tuples.
    pub fn with_capacity(n: usize) -> Self {
        TupleBatch {
            items: Vec::with_capacity(n),
        }
    }

    /// Append one routed tuple, preserving arrival order.
    #[inline]
    pub fn push(&mut self, pid: PartitionId, tuple: Tuple) {
        self.items.push((pid, tuple));
    }

    /// Number of tuples in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the batch holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drop all tuples, keeping the allocation for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterate over `(pid, tuple)` pairs in batch order.
    pub fn iter(&self) -> std::slice::Iter<'_, (PartitionId, Tuple)> {
        self.items.iter()
    }

    /// The batch contents as a slice, in batch order.
    #[inline]
    pub fn as_slice(&self) -> &[(PartitionId, Tuple)] {
        &self.items
    }

    /// Stable sort by partition ID: tuples for the same partition keep
    /// their relative (arrival) order, so per-partition processing after
    /// the sort is indistinguishable from per-tuple processing.
    pub fn sort_by_pid(&mut self) {
        self.items.sort_by_key(|(pid, _)| *pid);
    }
}

impl From<Vec<(PartitionId, Tuple)>> for TupleBatch {
    fn from(items: Vec<(PartitionId, Tuple)>) -> Self {
        TupleBatch { items }
    }
}

impl IntoIterator for TupleBatch {
    type Item = (PartitionId, Tuple);
    type IntoIter = std::vec::IntoIter<(PartitionId, Tuple)>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a (PartitionId, Tuple);
    type IntoIter = std::slice::Iter<'a, (PartitionId, Tuple)>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl Extend<(PartitionId, Tuple)> for TupleBatch {
    fn extend<T: IntoIterator<Item = (PartitionId, Tuple)>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StreamId;
    use crate::time::VirtualTime;
    use crate::tuple::TupleBuilder;

    fn tpl(stream: u8, seq: u64) -> Tuple {
        TupleBuilder::new(StreamId(stream))
            .seq(seq)
            .ts(VirtualTime::from_millis(seq))
            .value(seq as i64)
            .build()
    }

    #[test]
    fn push_preserves_order() {
        let mut b = TupleBatch::with_capacity(3);
        b.push(PartitionId(2), tpl(0, 0));
        b.push(PartitionId(1), tpl(1, 0));
        b.push(PartitionId(2), tpl(0, 1));
        assert_eq!(b.len(), 3);
        let seqs: Vec<u64> = b.iter().map(|(_, t)| t.seq()).collect();
        assert_eq!(seqs, vec![0, 0, 1]);
    }

    #[test]
    fn sort_by_pid_is_stable() {
        let mut b = TupleBatch::new();
        b.push(PartitionId(2), tpl(0, 0));
        b.push(PartitionId(1), tpl(1, 0));
        b.push(PartitionId(2), tpl(0, 1));
        b.push(PartitionId(1), tpl(1, 1));
        b.sort_by_pid();
        let order: Vec<(u32, u8, u64)> = b
            .iter()
            .map(|(p, t)| (p.0, t.stream().0, t.seq()))
            .collect();
        // Same-pid tuples keep arrival order.
        assert_eq!(order, vec![(1, 1, 0), (1, 1, 1), (2, 0, 0), (2, 0, 1)]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = TupleBatch::with_capacity(8);
        b.push(PartitionId(0), tpl(0, 0));
        b.clear();
        assert!(b.is_empty());
        assert!(b.as_slice().is_empty());
    }
}
