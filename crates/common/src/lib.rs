//! # dcape-common
//!
//! Shared foundation types for the `dcape` workspace, a reproduction of
//! *"Optimizing State-Intensive Non-Blocking Queries Using Run-time
//! Adaptation"* (Liu, Jbantova, Rundensteiner — ICDE 2007).
//!
//! This crate deliberately contains only the vocabulary that every other
//! crate needs:
//!
//! * [`ids`] — strongly typed identifiers (partitions, engines, streams).
//! * [`value`] / [`tuple`] — the row model flowing through operators.
//! * [`batch`] — the routed-tuple batch, the unit of inter-operator
//!   transfer in the batched dataflow.
//! * [`time`] — virtual time, the clock abstraction that lets hour-long
//!   paper experiments replay deterministically in seconds.
//! * [`mem`] — explicit heap-size accounting, the substitute for the
//!   paper's per-machine physical memory observations.
//! * [`hash`] — a fast, deterministic hasher used for partitioning.
//! * [`error`] — the workspace error type.

pub mod batch;
pub mod error;
pub mod hash;
pub mod ids;
pub mod mem;
pub mod partition;
pub mod time;
pub mod tuple;
pub mod value;

pub use batch::TupleBatch;
pub use error::{DcapeError, Result};
pub use ids::{EngineId, PartitionId, StreamId};
pub use mem::{HeapSize, MemoryTracker};
pub use partition::Partitioner;
pub use time::{VirtualDuration, VirtualTime};
pub use tuple::{Tuple, TupleBuilder};
pub use value::Value;
