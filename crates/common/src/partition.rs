//! Mapping join values to partition IDs.
//!
//! The split operator in front of every input stream (§2, Figure 2)
//! derives the partition ID from the join-column value. Any deterministic
//! function works as long as *all* splits of one operator agree; we offer
//! two:
//!
//! * [`Partitioner::Modulo`] — `value mod n` for integer keys. The
//!   experiments use this because the generator can then *choose* which
//!   partition a crafted value lands in (necessary to control
//!   per-partition join rates and machine-targeted skew).
//! * [`Partitioner::Hash`] — deterministic Fx hash of the value, the
//!   general-purpose choice for arbitrary key types.

use crate::ids::PartitionId;
use crate::value::Value;

/// Strategy for mapping a join-column value to one of `n` partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// `abs(int value) mod n`; falls back to hashing for non-integers.
    Modulo {
        /// Total number of partitions `n`.
        num_partitions: u32,
    },
    /// Deterministic hash of any value type, mod n.
    Hash {
        /// Total number of partitions `n`.
        num_partitions: u32,
    },
}

impl Partitioner {
    /// Build a modulo partitioner.
    pub fn modulo(num_partitions: u32) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        Partitioner::Modulo { num_partitions }
    }

    /// Build a hash partitioner.
    pub fn hash(num_partitions: u32) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        Partitioner::Hash { num_partitions }
    }

    /// Total number of partitions this partitioner spreads over.
    pub fn num_partitions(&self) -> u32 {
        match self {
            Partitioner::Modulo { num_partitions } | Partitioner::Hash { num_partitions } => {
                *num_partitions
            }
        }
    }

    /// The partition the given join value belongs to.
    pub fn partition_of(&self, value: &Value) -> PartitionId {
        match self {
            Partitioner::Modulo { num_partitions } => match value {
                Value::Int(i) => PartitionId((i.unsigned_abs() % *num_partitions as u64) as u32),
                other => PartitionId((other.partition_hash() % *num_partitions as u64) as u32),
            },
            Partitioner::Hash { num_partitions } => {
                PartitionId((value.partition_hash() % *num_partitions as u64) as u32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_places_crafted_values_predictably() {
        let p = Partitioner::modulo(16);
        for pid in 0..16u32 {
            for idx in 0..10u64 {
                let v = Value::Int((idx * 16 + pid as u64) as i64);
                assert_eq!(p.partition_of(&v), PartitionId(pid));
            }
        }
    }

    #[test]
    fn modulo_handles_negative_ints() {
        let p = Partitioner::modulo(10);
        assert_eq!(p.partition_of(&Value::Int(-3)), PartitionId(3));
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let p = Partitioner::hash(32);
        for i in 0..1000i64 {
            let a = p.partition_of(&Value::Int(i));
            let b = p.partition_of(&Value::Int(i));
            assert_eq!(a, b);
            assert!(a.0 < 32);
        }
    }

    #[test]
    fn hash_spreads_text_keys() {
        let p = Partitioner::hash(8);
        let mut seen = std::collections::HashSet::new();
        for name in [
            "USD", "EUR", "GBP", "JPY", "CHF", "AUD", "CAD", "NZD", "SEK",
        ] {
            seen.insert(p.partition_of(&Value::text(name)));
        }
        assert!(seen.len() >= 3, "keys all collided: {seen:?}");
    }

    #[test]
    fn num_partitions_accessor() {
        assert_eq!(Partitioner::modulo(7).num_partitions(), 7);
        assert_eq!(Partitioner::hash(9).num_partitions(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = Partitioner::modulo(0);
    }
}
