//! The tuple model.
//!
//! A [`Tuple`] is an immutable row tagged with its origin stream, a
//! per-stream sequence number, and the virtual arrival timestamp. Tuples
//! are reference-counted: a tuple sitting in a join's operator state and
//! the same tuple embedded in a downstream result share one allocation, so
//! cloning on the hot path is an atomic increment.
//!
//! Memory accounting intentionally charges the *full* estimated size to
//! every state that stores the tuple (see [`crate::mem`]): the paper's
//! machines each hold their own physical copy, and partition groups are
//! the unit whose sizes drive every adaptation decision.

use std::fmt;
use std::sync::Arc;

use crate::ids::StreamId;
use crate::mem::HeapSize;
use crate::time::VirtualTime;
use crate::value::Value;

/// Shared, immutable tuple payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TupleData {
    /// Which input stream produced the tuple.
    pub stream: StreamId,
    /// Per-stream sequence number (0-based arrival order).
    pub seq: u64,
    /// Virtual arrival timestamp.
    pub ts: VirtualTime,
    /// Column values.
    pub values: Box<[Value]>,
}

/// A reference-counted immutable tuple.
///
/// The [`HeapSize`] estimate is computed once at construction and cached
/// next to the `Arc`: accounting reads it on every insert, spill, purge
/// and snapshot, and tuples are immutable, so re-summing the payload per
/// call is pure waste on the hot path.
#[derive(Debug, Clone)]
pub struct Tuple {
    data: Arc<TupleData>,
    heap: usize,
}

/// Heap estimate of a tuple payload (see [`HeapSize for Tuple`]).
fn compute_heap_size(data: &TupleData) -> usize {
    // Fixed per-tuple overhead: Arc control block + TupleData inline
    // fields + per-value enum slots; then variable payloads.
    const ARC_OVERHEAD: usize = 16;
    let inline = std::mem::size_of::<TupleData>();
    let slots = data.values.len() * std::mem::size_of::<Value>();
    let payload: usize = data.values.iter().map(Value::payload_bytes).sum();
    ARC_OVERHEAD + inline + slots + payload
}

impl Tuple {
    /// Build a tuple directly from parts.
    pub fn new(stream: StreamId, seq: u64, ts: VirtualTime, values: Vec<Value>) -> Self {
        let data = TupleData {
            stream,
            seq,
            ts,
            values: values.into_boxed_slice(),
        };
        let heap = compute_heap_size(&data);
        Tuple {
            data: Arc::new(data),
            heap,
        }
    }

    /// Origin stream.
    #[inline]
    pub fn stream(&self) -> StreamId {
        self.data.stream
    }

    /// Per-stream arrival sequence number.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.data.seq
    }

    /// Virtual arrival timestamp.
    #[inline]
    pub fn ts(&self) -> VirtualTime {
        self.data.ts
    }

    /// All column values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.data.values
    }

    /// The value in column `idx`, if present.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.data.values.get(idx)
    }

    /// Column count.
    #[inline]
    pub fn arity(&self) -> usize {
        self.data.values.len()
    }

    /// Access to the shared payload (for codecs).
    #[inline]
    pub fn data(&self) -> &TupleData {
        &self.data
    }

    /// A globally unique identity for result-dedup checks in tests:
    /// (stream, seq) pairs are unique by construction.
    #[inline]
    pub fn identity(&self) -> (StreamId, u64) {
        (self.data.stream, self.data.seq)
    }
}

impl From<TupleData> for Tuple {
    fn from(d: TupleData) -> Self {
        let heap = compute_heap_size(&d);
        Tuple {
            data: Arc::new(d),
            heap,
        }
    }
}

// Equality and hashing look only at the shared payload: the cached heap
// estimate is a pure function of it.
impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Tuple {}

impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl HeapSize for Tuple {
    #[inline]
    fn heap_size(&self) -> usize {
        self.heap
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}(", self.stream(), self.seq())?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Fluent builder for tuples, used heavily in tests and examples.
#[derive(Debug, Default)]
pub struct TupleBuilder {
    stream: StreamId,
    seq: u64,
    ts: VirtualTime,
    values: Vec<Value>,
}

impl TupleBuilder {
    /// Start building a tuple for the given stream.
    pub fn new(stream: StreamId) -> Self {
        TupleBuilder {
            stream,
            ..Default::default()
        }
    }

    /// Set the per-stream sequence number.
    pub fn seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Set the virtual arrival timestamp.
    pub fn ts(mut self, ts: VirtualTime) -> Self {
        self.ts = ts;
        self
    }

    /// Append one column value.
    pub fn value(mut self, v: impl Into<Value>) -> Self {
        self.values.push(v.into());
        self
    }

    /// Append an accounting-only padding column of `n` virtual bytes.
    pub fn pad(mut self, n: u32) -> Self {
        self.values.push(Value::Pad(n));
        self
    }

    /// Finish the tuple.
    pub fn build(self) -> Tuple {
        Tuple::new(self.stream, self.seq, self.ts, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        TupleBuilder::new(StreamId(1))
            .seq(7)
            .ts(VirtualTime::from_millis(30))
            .value(42i64)
            .value("EUR")
            .pad(100)
            .build()
    }

    #[test]
    fn accessors() {
        let t = t();
        assert_eq!(t.stream(), StreamId(1));
        assert_eq!(t.seq(), 7);
        assert_eq!(t.ts().as_millis(), 30);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::Int(42)));
        assert_eq!(
            t.get(1).and_then(|v| v.as_text().map(str::to_owned)),
            Some("EUR".into())
        );
        assert_eq!(t.get(9), None);
        assert_eq!(t.identity(), (StreamId(1), 7));
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = t();
        let b = a.clone();
        assert_eq!(a, b);
        // Same allocation: data pointers coincide.
        assert!(std::ptr::eq(a.data(), b.data()));
    }

    #[test]
    fn heap_size_counts_pad_and_text() {
        let small = TupleBuilder::new(StreamId(0)).value(1i64).build();
        let padded = TupleBuilder::new(StreamId(0)).value(1i64).pad(1000).build();
        assert!(padded.heap_size() >= small.heap_size() + 1000 - std::mem::size_of::<Value>());
        assert!(small.heap_size() > 0);
    }

    #[test]
    fn display_mentions_stream_and_values() {
        let s = t().to_string();
        assert!(s.starts_with("S1#7("), "{s}");
        assert!(s.contains("42"), "{s}");
    }
}
