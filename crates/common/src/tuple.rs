//! The tuple model.
//!
//! A [`Tuple`] is an immutable row tagged with its origin stream, a
//! per-stream sequence number, and the virtual arrival timestamp. Tuples
//! are reference-counted: a tuple sitting in a join's operator state and
//! the same tuple embedded in a downstream result share one allocation, so
//! cloning on the hot path is an atomic increment.
//!
//! Memory accounting intentionally charges the *full* estimated size to
//! every state that stores the tuple (see [`crate::mem`]): the paper's
//! machines each hold their own physical copy, and partition groups are
//! the unit whose sizes drive every adaptation decision.

use std::fmt;
use std::sync::Arc;

use crate::ids::StreamId;
use crate::mem::HeapSize;
use crate::time::VirtualTime;
use crate::value::Value;

/// Shared, immutable tuple payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TupleData {
    /// Which input stream produced the tuple.
    pub stream: StreamId,
    /// Per-stream sequence number (0-based arrival order).
    pub seq: u64,
    /// Virtual arrival timestamp.
    pub ts: VirtualTime,
    /// Column values.
    pub values: Box<[Value]>,
}

/// A reference-counted immutable tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple(Arc<TupleData>);

impl Tuple {
    /// Build a tuple directly from parts.
    pub fn new(stream: StreamId, seq: u64, ts: VirtualTime, values: Vec<Value>) -> Self {
        Tuple(Arc::new(TupleData {
            stream,
            seq,
            ts,
            values: values.into_boxed_slice(),
        }))
    }

    /// Origin stream.
    #[inline]
    pub fn stream(&self) -> StreamId {
        self.0.stream
    }

    /// Per-stream arrival sequence number.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.0.seq
    }

    /// Virtual arrival timestamp.
    #[inline]
    pub fn ts(&self) -> VirtualTime {
        self.0.ts
    }

    /// All column values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0.values
    }

    /// The value in column `idx`, if present.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.values.get(idx)
    }

    /// Column count.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.values.len()
    }

    /// Access to the shared payload (for codecs).
    #[inline]
    pub fn data(&self) -> &TupleData {
        &self.0
    }

    /// A globally unique identity for result-dedup checks in tests:
    /// (stream, seq) pairs are unique by construction.
    #[inline]
    pub fn identity(&self) -> (StreamId, u64) {
        (self.0.stream, self.0.seq)
    }
}

impl From<TupleData> for Tuple {
    fn from(d: TupleData) -> Self {
        Tuple(Arc::new(d))
    }
}

impl HeapSize for Tuple {
    fn heap_size(&self) -> usize {
        // Fixed per-tuple overhead: Arc control block + TupleData inline
        // fields + per-value enum slots; then variable payloads.
        const ARC_OVERHEAD: usize = 16;
        let inline = std::mem::size_of::<TupleData>();
        let slots = self.0.values.len() * std::mem::size_of::<Value>();
        let payload: usize = self.0.values.iter().map(Value::payload_bytes).sum();
        ARC_OVERHEAD + inline + slots + payload
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}(", self.stream(), self.seq())?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Fluent builder for tuples, used heavily in tests and examples.
#[derive(Debug, Default)]
pub struct TupleBuilder {
    stream: StreamId,
    seq: u64,
    ts: VirtualTime,
    values: Vec<Value>,
}

impl TupleBuilder {
    /// Start building a tuple for the given stream.
    pub fn new(stream: StreamId) -> Self {
        TupleBuilder {
            stream,
            ..Default::default()
        }
    }

    /// Set the per-stream sequence number.
    pub fn seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Set the virtual arrival timestamp.
    pub fn ts(mut self, ts: VirtualTime) -> Self {
        self.ts = ts;
        self
    }

    /// Append one column value.
    pub fn value(mut self, v: impl Into<Value>) -> Self {
        self.values.push(v.into());
        self
    }

    /// Append an accounting-only padding column of `n` virtual bytes.
    pub fn pad(mut self, n: u32) -> Self {
        self.values.push(Value::Pad(n));
        self
    }

    /// Finish the tuple.
    pub fn build(self) -> Tuple {
        Tuple::new(self.stream, self.seq, self.ts, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        TupleBuilder::new(StreamId(1))
            .seq(7)
            .ts(VirtualTime::from_millis(30))
            .value(42i64)
            .value("EUR")
            .pad(100)
            .build()
    }

    #[test]
    fn accessors() {
        let t = t();
        assert_eq!(t.stream(), StreamId(1));
        assert_eq!(t.seq(), 7);
        assert_eq!(t.ts().as_millis(), 30);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::Int(42)));
        assert_eq!(
            t.get(1).and_then(|v| v.as_text().map(str::to_owned)),
            Some("EUR".into())
        );
        assert_eq!(t.get(9), None);
        assert_eq!(t.identity(), (StreamId(1), 7));
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = t();
        let b = a.clone();
        assert_eq!(a, b);
        // Same allocation: data pointers coincide.
        assert!(std::ptr::eq(a.data(), b.data()));
    }

    #[test]
    fn heap_size_counts_pad_and_text() {
        let small = TupleBuilder::new(StreamId(0)).value(1i64).build();
        let padded = TupleBuilder::new(StreamId(0)).value(1i64).pad(1000).build();
        assert!(padded.heap_size() >= small.heap_size() + 1000 - std::mem::size_of::<Value>());
        assert!(small.heap_size() > 0);
    }

    #[test]
    fn display_mentions_stream_and_values() {
        let s = t().to_string();
        assert!(s.starts_with("S1#7("), "{s}");
        assert!(s.contains("42"), "{s}");
    }
}
