//! Workspace-wide error type.
//!
//! Hand-rolled (no `thiserror`) to stay within the approved dependency set.

use std::fmt;
use std::io;

/// Convenient result alias used across all dcape crates.
pub type Result<T, E = DcapeError> = std::result::Result<T, E>;

/// The error type shared by every dcape crate.
#[derive(Debug)]
pub enum DcapeError {
    /// Underlying I/O failure (spill files, etc.).
    Io(io::Error),
    /// A spilled segment or network frame failed to decode.
    Codec(String),
    /// The relocation / coordination protocol was violated
    /// (unexpected message, wrong mode, missing ack).
    Protocol(String),
    /// Invalid configuration (thresholds, partition counts, …).
    Config(String),
    /// Operator state is inconsistent (missing partition group,
    /// accounting drift, double-install).
    State(String),
    /// A channel to another component closed unexpectedly.
    Disconnected(String),
}

impl DcapeError {
    /// Shorthand for a [`DcapeError::Codec`] with a formatted message.
    pub fn codec(msg: impl Into<String>) -> Self {
        DcapeError::Codec(msg.into())
    }

    /// Shorthand for a [`DcapeError::Protocol`] with a formatted message.
    pub fn protocol(msg: impl Into<String>) -> Self {
        DcapeError::Protocol(msg.into())
    }

    /// Shorthand for a [`DcapeError::Config`] with a formatted message.
    pub fn config(msg: impl Into<String>) -> Self {
        DcapeError::Config(msg.into())
    }

    /// Shorthand for a [`DcapeError::State`] with a formatted message.
    pub fn state(msg: impl Into<String>) -> Self {
        DcapeError::State(msg.into())
    }
}

impl fmt::Display for DcapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcapeError::Io(e) => write!(f, "i/o error: {e}"),
            DcapeError::Codec(m) => write!(f, "codec error: {m}"),
            DcapeError::Protocol(m) => write!(f, "protocol error: {m}"),
            DcapeError::Config(m) => write!(f, "config error: {m}"),
            DcapeError::State(m) => write!(f, "state error: {m}"),
            DcapeError::Disconnected(m) => write!(f, "disconnected: {m}"),
        }
    }
}

impl std::error::Error for DcapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DcapeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DcapeError {
    fn from(e: io::Error) -> Self {
        DcapeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = DcapeError::protocol("unexpected ptv");
        assert_eq!(e.to_string(), "protocol error: unexpected ptv");
        let e = DcapeError::codec("short read");
        assert!(e.to_string().contains("codec"));
        let e = DcapeError::config("bad threshold");
        assert!(e.to_string().contains("bad threshold"));
        let e = DcapeError::state("missing group");
        assert!(e.to_string().starts_with("state error"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: DcapeError = io.into();
        assert!(matches!(e, DcapeError::Io(_)));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }

    #[test]
    fn result_alias_defaults_to_dcape_error() {
        fn fails() -> Result<()> {
            Err(DcapeError::config("x"))
        }
        assert!(fails().is_err());
    }
}
