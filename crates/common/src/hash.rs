//! Deterministic, fast hashing for partitioning.
//!
//! Split operators hash the join-column value of every incoming tuple to a
//! [`PartitionId`](crate::ids::PartitionId). Two requirements drive this
//! module:
//!
//! 1. **Determinism across processes and runs** — the same join value must
//!    land in the same partition on the generator side, on every engine,
//!    and in every test, so the default `SipHash` (randomly keyed per
//!    process in some configurations, and slow for small keys) is not
//!    used. We implement the well-known `Fx` multiply-xor hash, which the
//!    Rust perf guide recommends for small integer-ish keys.
//! 2. **Speed** — hashing happens once per tuple per split operator, on
//!    the hot path.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplicative constant from the FxHash algorithm (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher (FxHash).
///
/// Not HashDoS-resistant; fine here because partition keys come from our
/// own generator / trusted query inputs, never from an adversary.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Fold in the length so "ab" and "ab\0" differ.
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash any `Hash` value with the deterministic hasher.
#[inline]
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(fx_hash(&42u64), fx_hash(&42u64));
        assert_eq!(fx_hash("currency-USD"), fx_hash("currency-USD"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fx_hash(&1u64), fx_hash(&2u64));
        assert_ne!(fx_hash("ab"), fx_hash("ab\0"));
        assert_ne!(fx_hash(&[1u8, 2, 3][..]), fx_hash(&[1u8, 2, 3, 0][..]));
    }

    #[test]
    fn spreads_sequential_keys_reasonably() {
        // Sequential integers should not all collide mod a partition count.
        let n = 64u64;
        let mut buckets = vec![0u32; n as usize];
        for k in 0..10_000u64 {
            buckets[(fx_hash(&k) % n) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        // Perfect balance would be ~156 per bucket; allow generous skew.
        assert!(min > 50, "min bucket {min}");
        assert!(max < 400, "max bucket {max}");
    }

    #[test]
    fn fx_map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 10);
        assert_eq!(m[&1], 10);
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("a");
        assert!(s.contains("a"));
    }
}
