//! Virtual time.
//!
//! The paper's experiments are defined in wall-clock terms — "input rate
//! 30 ms per stream", "run the query for 40 minutes", "τ_m = 45 seconds".
//! Re-running hour-long experiments in real time would make the
//! reproduction impractical and non-deterministic, so the workspace keeps
//! all experiment logic on a **virtual clock**: one tuple arrival advances
//! the clock by the configured inter-arrival gap, and every timer
//! (`ss_timer`, `sr_timer`, `lb_timer`, τ_m) is expressed in virtual
//! milliseconds. The threaded runtime can map virtual time back onto real
//! `std::time` pacing when desired.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point on the virtual timeline, in milliseconds since experiment start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(pub u64);

/// A span of virtual time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualDuration(pub u64);

impl VirtualTime {
    /// The experiment start.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        VirtualTime(ms)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        VirtualTime(s * 1000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        VirtualTime(m * 60_000)
    }

    /// Milliseconds since start.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since start (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional minutes since start, for plotting against paper figures.
    #[inline]
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Time elapsed since `earlier`; saturates at zero instead of
    /// underflowing when the clock comparison races.
    #[inline]
    pub fn since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }
}

impl VirtualDuration {
    /// The zero-length span.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        VirtualDuration(ms)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        VirtualDuration(s * 1000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        VirtualDuration(m * 60_000)
    }

    /// Milliseconds in the span.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds in the span (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    #[inline]
    fn sub(self, rhs: VirtualTime) -> VirtualDuration {
        self.since(rhs)
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A resettable countdown against virtual time, modelling the paper's
/// `ss_timer`, `sr_timer` and `lb_timer` (Table 1).
///
/// A timer with period `p` "expires" whenever at least `p` virtual
/// milliseconds have elapsed since the last reset. Drivers poll
/// [`PeriodicTimer::expired`] as the clock advances and call
/// [`PeriodicTimer::reset`] when acting on the expiry, mirroring the
/// `timer.reset()` lines in Algorithms 1 and 2.
#[derive(Debug, Clone)]
pub struct PeriodicTimer {
    period: VirtualDuration,
    last_reset: VirtualTime,
}

impl PeriodicTimer {
    /// Create a timer that first expires `period` after `start`.
    pub fn new(period: VirtualDuration, start: VirtualTime) -> Self {
        PeriodicTimer {
            period,
            last_reset: start,
        }
    }

    /// Has the period elapsed at `now`?
    #[inline]
    pub fn expired(&self, now: VirtualTime) -> bool {
        now.since(self.last_reset) >= self.period
    }

    /// Restart the countdown from `now`.
    #[inline]
    pub fn reset(&mut self, now: VirtualTime) {
        self.last_reset = now;
    }

    /// The configured period.
    #[inline]
    pub fn period(&self) -> VirtualDuration {
        self.period
    }

    /// When the timer was last reset.
    #[inline]
    pub fn last_reset(&self) -> VirtualTime {
        self.last_reset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(VirtualTime::from_secs(2).as_millis(), 2000);
        assert_eq!(VirtualTime::from_mins(3).as_secs(), 180);
        assert_eq!(VirtualDuration::from_mins(1).as_millis(), 60_000);
        assert!((VirtualTime::from_mins(2).as_mins_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = VirtualTime::from_millis(100) + VirtualDuration::from_millis(50);
        assert_eq!(t.as_millis(), 150);
        let mut t2 = t;
        t2 += VirtualDuration::from_millis(10);
        assert_eq!(t2.as_millis(), 160);
        assert_eq!((t2 - t).as_millis(), 10);
        // saturating: earlier - later == 0
        assert_eq!((t - t2).as_millis(), 0);
        assert_eq!(
            (VirtualDuration::from_millis(5) + VirtualDuration::from_millis(7)).as_millis(),
            12
        );
    }

    #[test]
    fn periodic_timer_expires_and_resets() {
        let mut timer = PeriodicTimer::new(VirtualDuration::from_secs(45), VirtualTime::ZERO);
        assert!(!timer.expired(VirtualTime::from_secs(44)));
        assert!(timer.expired(VirtualTime::from_secs(45)));
        assert!(timer.expired(VirtualTime::from_secs(46)));
        timer.reset(VirtualTime::from_secs(46));
        assert!(!timer.expired(VirtualTime::from_secs(90)));
        assert!(timer.expired(VirtualTime::from_secs(91)));
        assert_eq!(timer.period().as_secs(), 45);
        assert_eq!(timer.last_reset().as_secs(), 46);
    }

    #[test]
    fn display_forms() {
        assert_eq!(VirtualTime::from_millis(5).to_string(), "t+5ms");
        assert_eq!(VirtualDuration::from_millis(5).to_string(), "5ms");
    }
}
