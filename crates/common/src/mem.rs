//! Explicit memory accounting.
//!
//! The paper's adaptation triggers are all phrased in terms of observed
//! per-machine memory: "state spill is triggered whenever the memory usage
//! of the machine is over 200 MB" (§3.2), and relocation fires when
//! `M_least / M_max < θ_r` (§4). On a real cluster those numbers come from
//! the OS; in this reproduction every piece of operator state implements
//! [`HeapSize`] and each query engine owns a [`MemoryTracker`] that the
//! state manager debits and credits. The tracker is therefore the
//! source of truth for *all* adaptation decisions, exactly replacing the
//! paper's physical-memory observations at a configurable scale.
//!
//! A `debug_assertions`-only recomputation hook in the engine crate guards
//! against accounting drift.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Estimated heap footprint of a piece of operator state, in bytes.
///
/// Implementations estimate rather than measure: the goal is a consistent,
/// monotone proxy for real memory that all policies share, not allocator
/// ground truth.
pub trait HeapSize {
    /// Estimated bytes attributable to `self`.
    fn heap_size(&self) -> usize;
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        self.iter().map(HeapSize::heap_size).sum::<usize>()
            + (self.capacity() - self.len()) * std::mem::size_of::<T>()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_size(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_size)
    }
}

/// Thread-safe byte counter with a budget, owned by one query engine.
///
/// Shared (via `Arc`) between the engine's state manager (which updates
/// it) and the statistics reporter (which reads it for the coordinator).
#[derive(Debug)]
pub struct MemoryTracker {
    used: AtomicU64,
    budget: u64,
}

impl MemoryTracker {
    /// Create a tracker with the given budget in bytes. The budget is the
    /// engine's "physical memory" for adaptation purposes; exceeding the
    /// associated spill threshold triggers adaptation, not failure.
    pub fn new(budget_bytes: u64) -> Arc<Self> {
        Arc::new(MemoryTracker {
            used: AtomicU64::new(0),
            budget: budget_bytes,
        })
    }

    /// Record `bytes` of new state.
    #[inline]
    pub fn allocate(&self, bytes: usize) {
        self.used.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record `bytes` of state released (spilled or relocated away).
    /// Saturates at zero to stay robust against estimation asymmetries.
    #[inline]
    pub fn release(&self, bytes: usize) {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes as u64);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes currently accounted.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// The configured budget.
    #[inline]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// `used / budget` as a fraction (0.0 when the budget is zero).
    pub fn utilization(&self) -> f64 {
        if self.budget == 0 {
            0.0
        } else {
            self.used() as f64 / self.budget as f64
        }
    }

    /// Force the counter to an exact value (used by the drift-check in
    /// debug builds after recomputing state sizes from scratch).
    pub fn set_used(&self, bytes: u64) {
        self.used.store(bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_release_round_trip() {
        let t = MemoryTracker::new(1000);
        assert_eq!(t.used(), 0);
        t.allocate(600);
        t.allocate(100);
        assert_eq!(t.used(), 700);
        t.release(300);
        assert_eq!(t.used(), 400);
        assert_eq!(t.budget(), 1000);
        assert!((t.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn release_saturates_at_zero() {
        let t = MemoryTracker::new(10);
        t.allocate(5);
        t.release(50);
        assert_eq!(t.used(), 0);
    }

    #[test]
    fn zero_budget_utilization_is_zero() {
        let t = MemoryTracker::new(0);
        t.allocate(5);
        assert_eq!(t.utilization(), 0.0);
    }

    #[test]
    fn set_used_overrides() {
        let t = MemoryTracker::new(100);
        t.allocate(42);
        t.set_used(7);
        assert_eq!(t.used(), 7);
    }

    #[test]
    fn vec_and_option_heap_size() {
        struct Fixed;
        impl HeapSize for Fixed {
            fn heap_size(&self) -> usize {
                10
            }
        }
        let v = vec![Fixed, Fixed, Fixed];
        // Fixed is zero-sized, so spare capacity adds nothing.
        assert_eq!(v.heap_size(), 30);
        let some: Option<Fixed> = Some(Fixed);
        let none: Option<Fixed> = None;
        assert_eq!(some.heap_size(), 10);
        assert_eq!(none.heap_size(), 0);
    }

    #[test]
    fn tracker_is_thread_safe() {
        let t = MemoryTracker::new(1_000_000);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.allocate(3);
                        t.release(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.used(), 8 * 1000 * 2);
    }
}
