//! Strongly typed identifiers.
//!
//! The paper works with three kinds of entities that must never be mixed
//! up: *partitions* (the adaptation granularity — "we might work with 500
//! partitions over 10 machines", §2), *query engines* (machines running an
//! instance of a partitioned operator), and *input streams* of a
//! multi-input operator. Each gets a newtype.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one partition (equivalently: one *partition group*, since
/// the group is formed by the partitions sharing this ID across all input
/// streams — §2, Figure 3(b)).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PartitionId(pub u32);

/// Identifier of a query engine ("machine" in the paper).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct EngineId(pub u16);

/// Identifier of one input stream of a multi-input operator
/// (e.g. `A`, `B`, `C` of the three-way join in Figure 2).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct StreamId(pub u8);

impl PartitionId {
    /// Index form, for dense per-partition arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EngineId {
    /// Index form, for dense per-engine arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl StreamId {
    /// Index form, for dense per-stream arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QE{}", self.0)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Streams print as S0, S1, ... ; the examples name them A, B, C.
        write!(f, "S{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_ordered_hashable_and_display() {
        let a = PartitionId(3);
        let b = PartitionId(7);
        assert!(a < b);
        assert_eq!(a.to_string(), "P3");
        assert_eq!(EngineId(1).to_string(), "QE1");
        assert_eq!(StreamId(2).to_string(), "S2");

        let set: HashSet<PartitionId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(PartitionId(42).index(), 42);
        assert_eq!(EngineId(9).index(), 9);
        assert_eq!(StreamId(2).index(), 2);
    }
}
