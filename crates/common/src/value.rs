//! The value model.
//!
//! Tuples flowing through dcape carry a small, fixed repertoire of value
//! types — enough to express the paper's workloads (integer join keys,
//! textual attributes like `brokerName`, prices) plus one dcape-specific
//! addition, [`Value::Pad`]:
//!
//! The paper's tuples occupy real bytes in a 2 GB machine; our scaled
//! experiments account for state size explicitly (see
//! [`crate::mem::HeapSize`]). `Pad(n)` is an *accounting-only* payload: it
//! contributes `n` bytes to the measured state size (and `n` bytes of cost
//! to spill/relocation transfer models) without actually allocating them,
//! so simulations can run paper-scale state sizes on a laptop. Workloads
//! that want physically real payloads use [`Value::Blob`] instead.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::hash::fx_hash;
use bytes::Bytes;

/// A single column value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer; the usual join-key type in the experiments.
    Int(i64),
    /// 64-bit float (prices, exchange rates). Compared and hashed by bit
    /// pattern, so `NaN == NaN` here — acceptable for a workload value
    /// model, and necessary for values to serve as hash-join keys.
    Double(f64),
    /// Boolean flag.
    Bool(bool),
    /// Interned string (broker names, currency codes).
    Text(Arc<str>),
    /// Physically real opaque payload bytes.
    Blob(Bytes),
    /// Accounting-only payload of the given virtual byte length.
    Pad(u32),
}

impl Value {
    /// Text constructor from anything string-like.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float if this is a `Double`.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Returns the string slice if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Deterministic 64-bit hash of the value, used by split operators to
    /// derive partition IDs. Stable across runs and processes.
    pub fn partition_hash(&self) -> u64 {
        match self {
            Value::Null => fx_hash(&0xA110_0000_0000_0001u64),
            Value::Int(i) => fx_hash(i),
            Value::Double(d) => fx_hash(&d.to_bits()),
            Value::Bool(b) => fx_hash(&(*b as u64 | 0xB001_0000)),
            Value::Text(s) => fx_hash(s.as_bytes()),
            Value::Blob(b) => fx_hash(&b[..]),
            Value::Pad(n) => fx_hash(&(*n as u64 | 0x9AD0_0000_0000_0000)),
        }
    }

    /// Estimated heap bytes attributable to this value *in operator
    /// state*, beyond the enum's inline size. `Pad(n)` reports `n` by
    /// design (see module docs).
    pub fn payload_bytes(&self) -> usize {
        match self {
            Value::Text(s) => s.len(),
            Value::Blob(b) => b.len(),
            Value::Pad(n) => *n as usize,
            _ => 0,
        }
    }

    /// Total-order comparison usable for min/max aggregates. Values of
    /// different types order by type tag; `Double` uses IEEE total order.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) => 2,
                Double(_) => 3,
                Text(_) => 4,
                Blob(_) => 5,
                Pad(_) => 6,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            (Pad(a), Pad(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Int(a), Int(b)) => a == b,
            (Double(a), Double(b)) => a.to_bits() == b.to_bits(),
            (Bool(a), Bool(b)) => a == b,
            (Text(a), Text(b)) => a == b,
            (Blob(a), Blob(b)) => a == b,
            (Pad(a), Pad(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Tag + payload, consistent with PartialEq above.
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Double(d) => {
                state.write_u8(2);
                state.write_u64(d.to_bits());
            }
            Value::Bool(b) => {
                state.write_u8(3);
                state.write_u8(*b as u8);
            }
            Value::Text(s) => {
                state.write_u8(4);
                state.write(s.as_bytes());
            }
            Value::Blob(b) => {
                state.write_u8(5);
                state.write(b);
            }
            Value::Pad(n) => {
                state.write_u8(6);
                state.write_u32(*n);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Blob(b) => write!(f, "<blob {}B>", b.len()),
            Value::Pad(n) => write!(f, "<pad {n}B>"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_hash_are_consistent() {
        let pairs = [
            (Value::Int(5), Value::Int(5)),
            (Value::Double(1.5), Value::Double(1.5)),
            (Value::text("abc"), Value::text("abc")),
            (Value::Bool(true), Value::Bool(true)),
            (Value::Null, Value::Null),
            (Value::Pad(16), Value::Pad(16)),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(crate::hash::fx_hash(&a), crate::hash::fx_hash(&b));
        }
        assert_ne!(Value::Int(5), Value::Double(5.0));
        assert_ne!(Value::Int(1), Value::Int(2));
    }

    #[test]
    fn nan_equals_itself_for_join_keys() {
        let a = Value::Double(f64::NAN);
        let b = Value::Double(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(a.partition_hash(), b.partition_hash());
    }

    #[test]
    fn partition_hash_is_stable_and_type_tagged() {
        assert_eq!(
            Value::Int(7).partition_hash(),
            Value::Int(7).partition_hash()
        );
        assert_ne!(Value::Int(0).partition_hash(), Value::Null.partition_hash());
        assert_ne!(
            Value::Bool(false).partition_hash(),
            Value::Int(0).partition_hash()
        );
    }

    #[test]
    fn payload_bytes() {
        assert_eq!(Value::Int(1).payload_bytes(), 0);
        assert_eq!(Value::text("abcd").payload_bytes(), 4);
        assert_eq!(Value::Blob(Bytes::from_static(b"xyz")).payload_bytes(), 3);
        assert_eq!(Value::Pad(1024).payload_bytes(), 1024);
    }

    #[test]
    fn total_cmp_orders_within_and_across_types() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(2)), Less);
        assert_eq!(Value::Double(2.0).total_cmp(&Value::Double(1.0)), Greater);
        assert_eq!(Value::text("a").total_cmp(&Value::text("b")), Less);
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Less);
    }

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(2.5f64).as_double(), Some(2.5));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert!(Value::Null.is_null());
        assert!(!Value::from(true).is_null());
        assert_eq!(Value::Int(1).as_text(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Pad(8).to_string(), "<pad 8B>");
        assert_eq!(Value::text("x").to_string(), "\"x\"");
    }
}
