//! Plain-text tables, CSV output, and adaptation-journal exporters for
//! experiment reports.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use dcape_common::time::VirtualDuration;

use crate::journal::{AdaptEvent, JournalEntry};
use crate::series::TimeSeries;

/// A simple column-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let consider = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        };
        consider(&mut widths, &self.header);
        for r in &self.rows {
            consider(&mut widths, r);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:>w$}  ", w = w);
            }
            out.truncate(out.trim_end().len());
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        render_row(&mut out, &sep);
        for r in &self.rows {
            render_row(&mut out, r);
        }
        out
    }

    /// Write as CSV to `path`.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let mut s = String::new();
        let esc = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let line = |s: &mut String, row: &[String]| {
            let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
            s.push_str(&cells.join(","));
            s.push('\n');
        };
        line(&mut s, &self.header);
        for r in &self.rows {
            line(&mut s, r);
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, s)
    }
}

/// Render several series side by side, resampled at `step`: the first
/// column is time in minutes, then one column per series.
pub fn render_series_table(series: &[(&str, &TimeSeries)], step: VirtualDuration) -> Table {
    let mut header = vec!["t(min)"];
    header.extend(series.iter().map(|(n, _)| *n));
    let mut table = Table::new(&header);
    let end = series
        .iter()
        .filter_map(|(_, s)| s.last().map(|(t, _)| t))
        .max();
    let Some(end) = end else {
        return table;
    };
    let mut t = dcape_common::time::VirtualTime::ZERO;
    while t <= end {
        let mut row = vec![format!("{:.1}", t.as_mins_f64())];
        for (_, s) in series {
            row.push(match s.value_at(t) {
                Some(v) => format!("{v:.0}"),
                None => "0".to_string(),
            });
        }
        table.row(row);
        t += step;
    }
    table
}

/// One journal entry as a single-line JSON object. The encoder is
/// hand-rolled (the workspace carries no JSON dependency); every field
/// is a number, a static tag, or an id array, so no string escaping is
/// ever required.
pub fn journal_entry_to_json(entry: &JournalEntry) -> String {
    let mut s = String::with_capacity(160);
    let _ = write!(
        s,
        "{{\"at_ms\":{},\"seq\":{},\"kind\":\"{}\"",
        entry.at.as_millis(),
        entry.seq,
        entry.event.kind()
    );
    let ids = |list: &[dcape_common::ids::PartitionId]| {
        let cells: Vec<String> = list.iter().map(|p| p.0.to_string()).collect();
        format!("[{}]", cells.join(","))
    };
    // Non-finite floats are not valid JSON; report them as null.
    let num = |v: f64| {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            "null".to_string()
        }
    };
    match &entry.event {
        AdaptEvent::SpillDecision {
            engine,
            trigger,
            groups,
            state_bytes,
            encoded_bytes,
            memory_used,
            memory_budget,
        } => {
            let _ = write!(
                s,
                ",\"engine\":{},\"trigger\":\"{}\",\"groups\":{},\"state_bytes\":{},\
                 \"encoded_bytes\":{},\"memory_used\":{},\"memory_budget\":{}",
                engine.0,
                trigger.name(),
                ids(groups),
                state_bytes,
                encoded_bytes,
                memory_used,
                memory_budget
            );
        }
        AdaptEvent::RelocationStep {
            round,
            step,
            sender,
            receiver,
            parts,
            bytes,
            buffered_tuples,
            load_ratio,
        } => {
            let _ = write!(
                s,
                ",\"round\":{},\"step\":{},\"sender\":{},\"receiver\":{},\"parts\":{},\
                 \"bytes\":{},\"buffered_tuples\":{},\"load_ratio\":{}",
                round,
                step,
                sender.0,
                receiver.0,
                ids(parts),
                bytes,
                buffered_tuples,
                num(*load_ratio)
            );
        }
        AdaptEvent::CleanupPhase {
            engine,
            group,
            missing_results,
            scanned_tuples,
            disk_bytes_read,
        } => {
            let _ = write!(
                s,
                ",\"engine\":{},\"group\":{},\"missing_results\":{},\"scanned_tuples\":{},\
                 \"disk_bytes_read\":{}",
                engine.0, group.0, missing_results, scanned_tuples, disk_bytes_read
            );
        }
        AdaptEvent::StatsSample {
            engines,
            max_load,
            min_load,
            load_ratio,
            productivity_ratio,
            memory_used,
            memory_budget,
        } => {
            let _ = write!(
                s,
                ",\"engines\":{},\"max_load\":{},\"min_load\":{},\"load_ratio\":{},\
                 \"productivity_ratio\":{},\"memory_used\":{},\"memory_budget\":{}",
                engines,
                num(*max_load),
                num(*min_load),
                num(*load_ratio),
                num(*productivity_ratio),
                memory_used,
                memory_budget
            );
        }
        AdaptEvent::MemoryPressure {
            engine,
            used,
            budget,
        } => {
            let _ = write!(
                s,
                ",\"engine\":{},\"used\":{},\"budget\":{}",
                engine.0, used, budget
            );
        }
        AdaptEvent::FaultInjected {
            fault,
            edge,
            round,
            attempt,
        } => {
            let _ = write!(
                s,
                ",\"fault\":\"{fault}\",\"edge\":\"{edge}\",\"round\":{round},\
                 \"attempt\":{attempt}"
            );
        }
        AdaptEvent::ProtocolWarning {
            code,
            engine,
            round,
            detail,
        } => {
            let _ = write!(
                s,
                ",\"code\":\"{code}\",\"engine\":{},\"round\":{round},\"detail\":{detail}",
                engine.0
            );
        }
        AdaptEvent::EngineJoined { engine, members } => {
            let _ = write!(s, ",\"engine\":{},\"members\":{members}", engine.0);
        }
        AdaptEvent::EngineDrained { engine, moves } => {
            let _ = write!(s, ",\"engine\":{},\"moves\":{moves}", engine.0);
        }
    }
    s.push('}');
    s
}

/// Serialize a journal as JSON-lines: one object per line, oldest first.
pub fn journal_to_jsonl(entries: &[JournalEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&journal_entry_to_json(e));
        out.push('\n');
    }
    out
}

/// Write a journal as JSON-lines to `path`, creating parent dirs.
pub fn write_journal_jsonl(path: &Path, entries: &[JournalEntry]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, journal_to_jsonl(entries))
}

/// Human-readable journal rendering, one event per line.
pub fn render_journal(entries: &[JournalEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        let _ = write!(
            out,
            "[{:>9.1}s #{:<5}] ",
            e.at.as_millis() as f64 / 1e3,
            e.seq
        );
        match &e.event {
            AdaptEvent::SpillDecision {
                engine,
                trigger,
                groups,
                state_bytes,
                memory_used,
                memory_budget,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "spill     {engine} pushed {} group(s) ({state_bytes} B) to disk \
                     [{}; mem {memory_used}/{memory_budget}]",
                    groups.len(),
                    trigger.name()
                );
            }
            AdaptEvent::RelocationStep {
                round,
                step,
                sender,
                receiver,
                parts,
                bytes,
                buffered_tuples,
                load_ratio,
            } => {
                let what = match step {
                    1 => "coordinator asks sender to pick partitions",
                    2 => "sender reports chosen partitions",
                    3 => "splits pause routing to moving partitions",
                    4 => "sender extracts and ships state",
                    5 => "receiver installs state",
                    6 => "receiver acks transfer",
                    7 => "splits remap and flush buffered tuples",
                    _ => "engines resume",
                };
                let _ = writeln!(
                    out,
                    "reloc r{round} step {step}/8 {sender}->{receiver}: {what} \
                     [parts={}, bytes={bytes}, buffered={buffered_tuples}, ratio={load_ratio:.3}]",
                    parts.len()
                );
            }
            AdaptEvent::CleanupPhase {
                engine,
                group,
                missing_results,
                scanned_tuples,
                disk_bytes_read,
            } => {
                let _ = writeln!(
                    out,
                    "cleanup   {engine} merged {group}: {missing_results} missing result(s) \
                     from {scanned_tuples} tuple(s), {disk_bytes_read} B read"
                );
            }
            AdaptEvent::StatsSample {
                engines,
                load_ratio,
                productivity_ratio,
                memory_used,
                memory_budget,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "stats     {engines} engine(s): load_ratio={load_ratio:.3} \
                     prod_ratio={productivity_ratio:.3} mem={memory_used}/{memory_budget}"
                );
            }
            AdaptEvent::MemoryPressure {
                engine,
                used,
                budget,
            } => {
                let _ = writeln!(
                    out,
                    "pressure  {engine} at {used}/{budget} B ({:.0}%)",
                    *used as f64 / (*budget).max(1) as f64 * 100.0
                );
            }
            AdaptEvent::FaultInjected {
                fault,
                edge,
                round,
                attempt,
            } => {
                let _ = writeln!(
                    out,
                    "fault     {fault} injected at {edge} [round={round}, attempt={attempt}]"
                );
            }
            AdaptEvent::ProtocolWarning {
                code,
                engine,
                round,
                detail,
            } => {
                let _ = writeln!(
                    out,
                    "warning   {code} from {engine} [round={round}, detail={detail}]"
                );
            }
            AdaptEvent::EngineJoined { engine, members } => {
                let _ = writeln!(out, "join      {engine} admitted ({members} member(s))");
            }
            AdaptEvent::EngineDrained { engine, moves } => {
                let _ = writeln!(out, "drain     {engine} emptied after {moves} move(s)");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::time::VirtualTime;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[3].contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_and_writes() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        let path = std::env::temp_dir().join(format!("dcape-csv-{}.csv", std::process::id()));
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"x,y\""));
        assert!(content.contains("\"q\"\"z\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn series_table_resamples() {
        let mut s1 = TimeSeries::new();
        s1.push(VirtualTime::from_mins(0), 10.0);
        s1.push(VirtualTime::from_mins(2), 20.0);
        let mut s2 = TimeSeries::new();
        s2.push(VirtualTime::from_mins(1), 5.0);
        let t = render_series_table(&[("a", &s1), ("b", &s2)], VirtualDuration::from_mins(1));
        let rendered = t.render();
        assert!(rendered.contains("t(min)"));
        assert_eq!(t.len(), 3); // minutes 0, 1, 2
        assert!(rendered.contains("20"));
    }

    #[test]
    fn empty_series_table() {
        let t = render_series_table(&[], VirtualDuration::from_mins(1));
        assert!(t.is_empty());
    }

    #[test]
    fn journal_jsonl_is_one_object_per_line() {
        use crate::journal::{AdaptEvent, JournalHandle, SpillTrigger};
        use dcape_common::ids::{EngineId, PartitionId};
        let handle = JournalHandle::with_capacity(8);
        handle.record(
            VirtualTime::from_millis(5),
            AdaptEvent::SpillDecision {
                engine: EngineId(1),
                trigger: SpillTrigger::MemoryThreshold,
                groups: vec![PartitionId(3), PartitionId(7)],
                state_bytes: 1000,
                encoded_bytes: 800,
                memory_used: 900,
                memory_budget: 1000,
            },
        );
        handle.record(
            VirtualTime::from_millis(9),
            AdaptEvent::RelocationStep {
                round: 1,
                step: 4,
                sender: EngineId(0),
                receiver: EngineId(2),
                parts: vec![PartitionId(3)],
                bytes: 512,
                buffered_tuples: 0,
                load_ratio: 0.0,
            },
        );
        let jsonl = journal_to_jsonl(&handle.snapshot());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(lines[0].contains("\"kind\":\"spill_decision\""));
        assert!(lines[0].contains("\"groups\":[3,7]"));
        assert!(lines[0].contains("\"trigger\":\"memory_threshold\""));
        assert!(lines[1].contains("\"kind\":\"relocation_step\""));
        assert!(lines[1].contains("\"step\":4"));
    }

    #[test]
    fn journal_json_rejects_non_finite_floats() {
        use crate::journal::{AdaptEvent, JournalEntry};
        let entry = JournalEntry {
            at: VirtualTime::ZERO,
            seq: 0,
            event: AdaptEvent::StatsSample {
                engines: 2,
                max_load: f64::INFINITY,
                min_load: 0.0,
                load_ratio: f64::NAN,
                productivity_ratio: 1.5,
                memory_used: 10,
                memory_budget: 20,
            },
        };
        let json = journal_entry_to_json(&entry);
        assert!(json.contains("\"max_load\":null"));
        assert!(json.contains("\"load_ratio\":null"));
        assert!(json.contains("\"productivity_ratio\":1.5"));
        assert!(!json.contains("inf") && !json.contains("NaN"));
    }

    #[test]
    fn journal_human_rendering_names_steps() {
        use crate::journal::{AdaptEvent, JournalEntry};
        use dcape_common::ids::EngineId;
        let entries: Vec<JournalEntry> = (1..=8)
            .map(|step| JournalEntry {
                at: VirtualTime::from_millis(step as u64),
                seq: step as u64,
                event: AdaptEvent::RelocationStep {
                    round: 2,
                    step,
                    sender: EngineId(0),
                    receiver: EngineId(1),
                    parts: vec![],
                    bytes: 0,
                    buffered_tuples: 0,
                    load_ratio: 0.4,
                },
            })
            .collect();
        let text = render_journal(&entries);
        assert_eq!(text.lines().count(), 8);
        assert!(text.contains("step 1/8"));
        assert!(text.contains("pause routing"));
        assert!(text.contains("engines resume"));
    }

    #[test]
    fn fault_and_warning_events_export_cleanly() {
        use crate::journal::{AdaptEvent, JournalEntry};
        use dcape_common::ids::EngineId;
        let entries = vec![
            JournalEntry {
                at: VirtualTime::from_millis(3),
                seq: 0,
                event: AdaptEvent::FaultInjected {
                    fault: "drop",
                    edge: "install_states",
                    round: 4,
                    attempt: 1,
                },
            },
            JournalEntry {
                at: VirtualTime::from_millis(7),
                seq: 1,
                event: AdaptEvent::ProtocolWarning {
                    code: "stale_transfer_ack",
                    engine: EngineId(2),
                    round: 3,
                    detail: 6,
                },
            },
        ];
        let jsonl = journal_to_jsonl(&entries);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"kind\":\"fault_injected\""));
        assert!(lines[0].contains("\"fault\":\"drop\""));
        assert!(lines[0].contains("\"edge\":\"install_states\""));
        assert!(lines[1].contains("\"kind\":\"protocol_warning\""));
        assert!(lines[1].contains("\"code\":\"stale_transfer_ack\""));
        let text = render_journal(&entries);
        assert!(text.contains("fault     drop injected at install_states"));
        assert!(text.contains("warning   stale_transfer_ack from QE2"));
    }

    #[test]
    fn journal_jsonl_writes_to_disk() {
        use crate::journal::{AdaptEvent, JournalHandle};
        use dcape_common::ids::EngineId;
        let handle = JournalHandle::with_capacity(4);
        handle.record(
            VirtualTime::ZERO,
            AdaptEvent::MemoryPressure {
                engine: EngineId(0),
                used: 5,
                budget: 10,
            },
        );
        let path =
            std::env::temp_dir().join(format!("dcape-journal-{}/events.jsonl", std::process::id()));
        write_journal_jsonl(&path, &handle.snapshot()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"kind\":\"memory_pressure\""));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
