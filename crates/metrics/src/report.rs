//! Plain-text tables and CSV output for experiment reports.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use dcape_common::time::VirtualDuration;

use crate::series::TimeSeries;

/// A simple column-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let consider = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        };
        consider(&mut widths, &self.header);
        for r in &self.rows {
            consider(&mut widths, r);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:>w$}  ", w = w);
            }
            out.truncate(out.trim_end().len());
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        render_row(&mut out, &sep);
        for r in &self.rows {
            render_row(&mut out, r);
        }
        out
    }

    /// Write as CSV to `path`.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let mut s = String::new();
        let esc = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let line = |s: &mut String, row: &[String]| {
            let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
            s.push_str(&cells.join(","));
            s.push('\n');
        };
        line(&mut s, &self.header);
        for r in &self.rows {
            line(&mut s, r);
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, s)
    }
}

/// Render several series side by side, resampled at `step`: the first
/// column is time in minutes, then one column per series.
pub fn render_series_table(
    series: &[(&str, &TimeSeries)],
    step: VirtualDuration,
) -> Table {
    let mut header = vec!["t(min)"];
    header.extend(series.iter().map(|(n, _)| *n));
    let mut table = Table::new(&header);
    let end = series
        .iter()
        .filter_map(|(_, s)| s.last().map(|(t, _)| t))
        .max();
    let Some(end) = end else {
        return table;
    };
    let mut t = dcape_common::time::VirtualTime::ZERO;
    while t <= end {
        let mut row = vec![format!("{:.1}", t.as_mins_f64())];
        for (_, s) in series {
            row.push(match s.value_at(t) {
                Some(v) => format!("{v:.0}"),
                None => "0".to_string(),
            });
        }
        table.row(row);
        t += step;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::time::VirtualTime;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[3].contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_and_writes() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        let path = std::env::temp_dir().join(format!("dcape-csv-{}.csv", std::process::id()));
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"x,y\""));
        assert!(content.contains("\"q\"\"z\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn series_table_resamples() {
        let mut s1 = TimeSeries::new();
        s1.push(VirtualTime::from_mins(0), 10.0);
        s1.push(VirtualTime::from_mins(2), 20.0);
        let mut s2 = TimeSeries::new();
        s2.push(VirtualTime::from_mins(1), 5.0);
        let t = render_series_table(&[("a", &s1), ("b", &s2)], VirtualDuration::from_mins(1));
        let rendered = t.render();
        assert!(rendered.contains("t(min)"));
        assert_eq!(t.len(), 3); // minutes 0, 1, 2
        assert!(rendered.contains("20"));
    }

    #[test]
    fn empty_series_table() {
        let t = render_series_table(&[], VirtualDuration::from_mins(1));
        assert!(t.is_empty());
    }
}
