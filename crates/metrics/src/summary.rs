//! Scalar summaries over sample sets (relocation sizes, buffered-tuple
//! counts, per-engine costs).

/// Count / mean / min / median / p95 / max of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Median (0 when empty).
    pub median: f64,
    /// 95th percentile, nearest-rank (0 when empty).
    pub p95: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl Summary {
    /// Summarize a sample set (non-finite values are ignored).
    pub fn of(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut v: Vec<f64> = values.into_iter().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                median: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite"));
        let count = v.len();
        let mean = v.iter().sum::<f64>() / count as f64;
        let rank = |q: f64| -> f64 {
            // Nearest-rank percentile.
            let idx = ((q * count as f64).ceil() as usize).clamp(1, count) - 1;
            v[idx]
        };
        Summary {
            count,
            mean,
            min: v[0],
            median: rank(0.5),
            p95: rank(0.95),
            max: v[count - 1],
        }
    }

    /// Render as a compact one-line string.
    pub fn render(&self) -> String {
        format!(
            "n={} mean={:.1} min={:.1} p50={:.1} p95={:.1} max={:.1}",
            self.count, self.mean, self.min, self.median, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_known_set() {
        let s = Summary::of((1..=100).map(|i| i as f64));
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::of(std::iter::empty());
        assert_eq!(e.count, 0);
        assert_eq!(e.max, 0.0);
        let s = Summary::of([7.0]);
        assert_eq!(
            (s.count, s.min, s.median, s.p95, s.max),
            (1, 7.0, 7.0, 7.0, 7.0)
        );
    }

    #[test]
    fn ignores_non_finite() {
        let s = Summary::of([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn render_is_compact() {
        let s = Summary::of([1.0, 2.0]);
        let r = s.render();
        assert!(r.contains("n=2"));
        assert!(r.contains("mean=1.5"));
    }
}
