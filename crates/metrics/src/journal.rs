//! Structured adaptation-event journal.
//!
//! Every run-time adaptation the paper describes — state spill (§4),
//! the 8-step relocation protocol (§5.2), cleanup (§4.2) — is recorded
//! here as a typed [`AdaptEvent`] carrying the numbers that triggered
//! it, so a run can be audited after the fact: *why* did engine 2 spill
//! at t=84s, which partitions moved in round 3, how many tuples were
//! buffered while the split remapped.
//!
//! The journal is designed to sit on the hot path of both runtimes:
//! recording is one short mutex acquisition on a fixed-size ring (no
//! allocation beyond the event payload), counters are plain atomics,
//! and a disabled [`JournalHandle`] is a no-op that costs one branch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::VirtualTime;

/// Default ring capacity: generous for full paper-scale runs while
/// bounding memory to a few MB.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// What initiated a state spill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillTrigger {
    /// The local controller crossed its memory threshold (§4.1).
    MemoryThreshold,
    /// The global coordinator forced the spill (active-disk, §6.2).
    Forced,
}

impl SpillTrigger {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpillTrigger::MemoryThreshold => "memory_threshold",
            SpillTrigger::Forced => "forced",
        }
    }
}

/// One adaptation event, with the numbers that triggered it.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptEvent {
    /// An engine pushed partition groups to disk (§4.1).
    SpillDecision {
        /// Engine that spilled.
        engine: EngineId,
        /// What initiated the spill.
        trigger: SpillTrigger,
        /// Partition groups chosen as victims.
        groups: Vec<PartitionId>,
        /// In-memory bytes removed.
        state_bytes: u64,
        /// Bytes as encoded on disk.
        encoded_bytes: u64,
        /// Memory in use when the decision fired.
        memory_used: u64,
        /// The engine's memory budget.
        memory_budget: u64,
    },
    /// One step of the 8-step relocation protocol (§5.2).
    RelocationStep {
        /// Coordinator round id.
        round: u64,
        /// Protocol step, 1..=8.
        step: u8,
        /// Engine shedding state.
        sender: EngineId,
        /// Engine receiving state.
        receiver: EngineId,
        /// Partitions being moved (empty at step 1, before the sender
        /// has picked them).
        parts: Vec<PartitionId>,
        /// State bytes requested (step 1) or shipped (steps 4–5); zero
        /// elsewhere.
        bytes: u64,
        /// Tuples buffered at the splits and flushed at step 7 (zero
        /// elsewhere).
        buffered_tuples: u64,
        /// `M_least / M_max` load ratio that triggered the round
        /// (meaningful at step 1; zero elsewhere).
        load_ratio: f64,
    },
    /// Disk-resident state merged to emit missing results (§4.2).
    CleanupPhase {
        /// Engine doing the cleanup.
        engine: EngineId,
        /// Partition group being merged.
        group: PartitionId,
        /// Result tuples recovered from disk state.
        missing_results: u64,
        /// Tuples scanned during the merge.
        scanned_tuples: u64,
        /// Disk bytes read back.
        disk_bytes_read: u64,
    },
    /// Periodic cluster-wide statistics snapshot fed to the strategies.
    StatsSample {
        /// Number of engines reporting.
        engines: u32,
        /// Highest per-engine memory load.
        max_load: f64,
        /// Lowest per-engine memory load.
        min_load: f64,
        /// `min/max` memory-load ratio (Algorithm 1's trigger input).
        load_ratio: f64,
        /// `max/min` productivity ratio (Algorithm 2's trigger input).
        productivity_ratio: f64,
        /// Total memory in use across the cluster.
        memory_used: u64,
        /// Total memory budget across the cluster.
        memory_budget: u64,
    },
    /// An engine crossed its memory threshold (emitted before the
    /// corresponding spill decision resolves victims).
    MemoryPressure {
        /// Engine under pressure.
        engine: EngineId,
        /// Memory in use.
        used: u64,
        /// The engine's budget.
        budget: u64,
    },
    /// The chaos layer injected a fault at a message edge (deterministic
    /// seeded schedule; see `dcape-cluster::faults`).
    FaultInjected {
        /// Which fault fired: `drop`, `duplicate`, `delay`,
        /// `corrupt_length`, `stall`, or `crash`.
        fault: &'static str,
        /// Message edge the fault hit (stable snake_case, e.g.
        /// `install_states`).
        edge: &'static str,
        /// Relocation round the message belonged to (zero when the edge
        /// is not round-scoped).
        round: u64,
        /// Delivery attempt the fault applied to (first send is 0).
        attempt: u32,
    },
    /// A protocol anomaly that was tolerated and journaled instead of
    /// poisoning the coordinator: stale or duplicate round messages,
    /// phase timeouts, retries, aborts, peers declared dead.
    ProtocolWarning {
        /// Stable snake_case warning code, e.g. `stale_ptv`,
        /// `duplicate_transfer_ack`, `phase_timeout`, `round_aborted`.
        code: &'static str,
        /// Engine the anomalous message came from (for timeouts, the
        /// round's sender).
        engine: EngineId,
        /// Round id the message referenced.
        round: u64,
        /// Code-dependent detail (protocol step for timeouts, retry
        /// attempt for retries, zero otherwise).
        detail: u64,
    },
    /// An engine was admitted into the live membership: it now
    /// participates in placement and the rebalancing planner may drain
    /// partition groups toward it.
    EngineJoined {
        /// The admitted engine.
        engine: EngineId,
        /// Engines in the membership after admission (active plus
        /// draining; excludes engines already fully drained).
        members: u32,
    },
    /// An engine finished draining: it owns zero partition groups, its
    /// spilled segments were forwarded to the new owners, and it may
    /// exit.
    EngineDrained {
        /// The drained engine.
        engine: EngineId,
        /// Relocation rounds (plus any final zero-state remap) it took
        /// to empty the engine.
        moves: u64,
    },
}

impl AdaptEvent {
    /// Stable snake_case tag used in exports and filtering.
    pub fn kind(&self) -> &'static str {
        match self {
            AdaptEvent::SpillDecision { .. } => "spill_decision",
            AdaptEvent::RelocationStep { .. } => "relocation_step",
            AdaptEvent::CleanupPhase { .. } => "cleanup_phase",
            AdaptEvent::StatsSample { .. } => "stats_sample",
            AdaptEvent::MemoryPressure { .. } => "memory_pressure",
            AdaptEvent::FaultInjected { .. } => "fault_injected",
            AdaptEvent::ProtocolWarning { .. } => "protocol_warning",
            AdaptEvent::EngineJoined { .. } => "engine_joined",
            AdaptEvent::EngineDrained { .. } => "engine_drained",
        }
    }
}

/// A journal record: when, in what order, and what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Virtual time of the event.
    pub at: VirtualTime,
    /// Per-journal sequence number (total order within one journal even
    /// when many events share a timestamp).
    pub seq: u64,
    /// The event payload.
    pub event: AdaptEvent,
}

/// Monotonic counters and gauges kept beside the event ring. All are
/// plain atomics so strategies and exporters can read them without
/// touching the ring's lock.
#[derive(Debug, Default)]
pub struct JournalCounters {
    tuples_routed: AtomicU64,
    spill_bytes: AtomicU64,
    spill_bytes_written: AtomicU64,
    spill_bytes_read: AtomicU64,
    relocation_bytes: AtomicU64,
    transfer_bytes: AtomicU64,
    buffered_in_flight: AtomicU64,
    purges_deferred: AtomicU64,
    watermark_held_ms: AtomicU64,
    replayed_in_order: AtomicU64,
    faults_injected: AtomicU64,
    msgs_retried: AtomicU64,
    rounds_aborted: AtomicU64,
    watermark_released_on_abort: AtomicU64,
    rebalance_moves: AtomicU64,
    events_recorded: AtomicU64,
    events_dropped: AtomicU64,
}

impl JournalCounters {
    /// Tuples routed through splits/engines so far.
    pub fn tuples_routed(&self) -> u64 {
        self.tuples_routed.load(Ordering::Relaxed)
    }

    /// Total state bytes pushed to disk by spills.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes.load(Ordering::Relaxed)
    }

    /// Physically encoded bytes written to disk by spills (what hit the
    /// backend, after segment-codec compression; compare with
    /// [`spill_bytes`](Self::spill_bytes), the accounted state volume).
    pub fn spill_bytes_written(&self) -> u64 {
        self.spill_bytes_written.load(Ordering::Relaxed)
    }

    /// Physically encoded bytes read back from disk (cleanup merges,
    /// run-time reactivation, segment forwarding).
    pub fn spill_bytes_read(&self) -> u64 {
        self.spill_bytes_read.load(Ordering::Relaxed)
    }

    /// Total state bytes shipped between engines by relocation.
    pub fn relocation_bytes(&self) -> u64 {
        self.relocation_bytes.load(Ordering::Relaxed)
    }

    /// Physically encoded bytes shipped between engines by relocation
    /// `SendStates` transfers (wire volume after segment-codec
    /// compression; compare with
    /// [`relocation_bytes`](Self::relocation_bytes)).
    pub fn transfer_bytes(&self) -> u64 {
        self.transfer_bytes.load(Ordering::Relaxed)
    }

    /// Tuples currently buffered at paused splits (steps 4–7 of the
    /// protocol); returns to zero once step 7 flushes them.
    pub fn buffered_in_flight(&self) -> u64 {
        self.buffered_in_flight.load(Ordering::Relaxed)
    }

    /// Purge pulses that ran with a held-back horizon: tuples were
    /// buffered at paused splits, so the purge horizon was clamped to
    /// the oldest buffered timestamp instead of the current clock.
    pub fn purges_deferred(&self) -> u64 {
        self.purges_deferred.load(Ordering::Relaxed)
    }

    /// Total virtual milliseconds the purge watermark spent held back
    /// by relocations (summed over rounds, accumulated at release).
    pub fn watermark_held_ms(&self) -> u64 {
        self.watermark_held_ms.load(Ordering::Relaxed)
    }

    /// Tuples replayed in timestamp order at step 7 of the relocation
    /// protocol (buffered during the pause, flushed ahead of every
    /// post-resume arrival).
    pub fn replayed_in_order(&self) -> u64 {
        self.replayed_in_order.load(Ordering::Relaxed)
    }

    /// Faults the chaos layer injected (drops, duplicates, delays,
    /// corruptions, stalls, crashes), summed across all edges.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// Protocol messages re-sent after a phase timeout.
    pub fn msgs_retried(&self) -> u64 {
        self.msgs_retried.load(Ordering::Relaxed)
    }

    /// Relocation rounds abandoned after retries were exhausted (the
    /// sender resumed its paused partitions locally).
    pub fn rounds_aborted(&self) -> u64 {
        self.rounds_aborted.load(Ordering::Relaxed)
    }

    /// Held purge watermarks released by the abort path rather than a
    /// step-7 Resume (one per aborted round that was holding one).
    pub fn watermark_released_on_abort(&self) -> u64 {
        self.watermark_released_on_abort.load(Ordering::Relaxed)
    }

    /// Relocation moves issued by the elastic rebalancing planner
    /// (join rebalances plus drain rounds), as opposed to moves chosen
    /// by the load-balancing strategies.
    pub fn rebalance_moves(&self) -> u64 {
        self.rebalance_moves.load(Ordering::Relaxed)
    }

    /// Events accepted into the ring.
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded.load(Ordering::Relaxed)
    }

    /// Events overwritten after the ring filled.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Ordering::Relaxed)
    }

    /// Plain-data copy of the current values.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            tuples_routed: self.tuples_routed(),
            spill_bytes: self.spill_bytes(),
            spill_bytes_written: self.spill_bytes_written(),
            spill_bytes_read: self.spill_bytes_read(),
            relocation_bytes: self.relocation_bytes(),
            transfer_bytes: self.transfer_bytes(),
            buffered_in_flight: self.buffered_in_flight(),
            purges_deferred: self.purges_deferred(),
            watermark_held_ms: self.watermark_held_ms(),
            replayed_in_order: self.replayed_in_order(),
            faults_injected: self.faults_injected(),
            msgs_retried: self.msgs_retried(),
            rounds_aborted: self.rounds_aborted(),
            watermark_released_on_abort: self.watermark_released_on_abort(),
            rebalance_moves: self.rebalance_moves(),
            events_recorded: self.events_recorded(),
            events_dropped: self.events_dropped(),
        }
    }
}

/// Point-in-time copy of [`JournalCounters`], for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Tuples routed through splits/engines.
    pub tuples_routed: u64,
    /// Total state bytes pushed to disk by spills.
    pub spill_bytes: u64,
    /// Physically encoded bytes written to disk by spills.
    pub spill_bytes_written: u64,
    /// Physically encoded bytes read back from disk.
    pub spill_bytes_read: u64,
    /// Total state bytes shipped between engines by relocation.
    pub relocation_bytes: u64,
    /// Physically encoded bytes shipped by relocation transfers.
    pub transfer_bytes: u64,
    /// Tuples still buffered at paused splits when sampled.
    pub buffered_in_flight: u64,
    /// Purge pulses that ran with a relocation-held horizon.
    pub purges_deferred: u64,
    /// Virtual milliseconds the purge watermark was held back, total.
    pub watermark_held_ms: u64,
    /// Tuples replayed in timestamp order at step-7 flushes.
    pub replayed_in_order: u64,
    /// Faults injected by the chaos layer.
    pub faults_injected: u64,
    /// Protocol messages re-sent after phase timeouts.
    pub msgs_retried: u64,
    /// Relocation rounds abandoned after retry exhaustion.
    pub rounds_aborted: u64,
    /// Held watermarks released by the abort path.
    pub watermark_released_on_abort: u64,
    /// Relocation moves issued by the elastic rebalancing planner.
    pub rebalance_moves: u64,
    /// Events accepted into the ring.
    pub events_recorded: u64,
    /// Events overwritten after the ring filled.
    pub events_dropped: u64,
}

impl CountersSnapshot {
    /// Fold another snapshot into this one (summing every counter).
    pub fn absorb(&mut self, other: &CountersSnapshot) {
        self.tuples_routed += other.tuples_routed;
        self.spill_bytes += other.spill_bytes;
        self.spill_bytes_written += other.spill_bytes_written;
        self.spill_bytes_read += other.spill_bytes_read;
        self.relocation_bytes += other.relocation_bytes;
        self.transfer_bytes += other.transfer_bytes;
        self.buffered_in_flight += other.buffered_in_flight;
        self.purges_deferred += other.purges_deferred;
        self.watermark_held_ms += other.watermark_held_ms;
        self.replayed_in_order += other.replayed_in_order;
        self.faults_injected += other.faults_injected;
        self.msgs_retried += other.msgs_retried;
        self.rounds_aborted += other.rounds_aborted;
        self.watermark_released_on_abort += other.watermark_released_on_abort;
        self.rebalance_moves += other.rebalance_moves;
        self.events_recorded += other.events_recorded;
        self.events_dropped += other.events_dropped;
    }

    /// Spill compression ratio: accounted state bytes spilled per
    /// encoded byte physically written (`None` before any encoded
    /// write). A row-codec run of plain-payload tuples sits near 1; the
    /// column-block codec on regular data pushes this well above 2.
    pub fn spill_compression_ratio(&self) -> Option<f64> {
        (self.spill_bytes_written > 0)
            .then(|| self.spill_bytes as f64 / self.spill_bytes_written as f64)
    }
}

/// Fixed-capacity overwrite-oldest ring of journal entries.
#[derive(Debug)]
struct Ring {
    slots: Vec<JournalEntry>,
    capacity: usize,
    /// Index of the next write; wraps once `slots` is full.
    head: usize,
}

impl Ring {
    fn push(&mut self, entry: JournalEntry) -> bool {
        if self.slots.len() < self.capacity {
            self.slots.push(entry);
            true
        } else {
            let dropped_head = self.head;
            self.slots[dropped_head] = entry;
            self.head = (self.head + 1) % self.capacity;
            false
        }
    }

    fn snapshot(&self) -> Vec<JournalEntry> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.head..]);
        out.extend_from_slice(&self.slots[..self.head]);
        out
    }
}

/// The journal: an event ring plus counters.
#[derive(Debug)]
pub struct EventJournal {
    ring: Mutex<Ring>,
    seq: AtomicU64,
    counters: JournalCounters,
}

impl EventJournal {
    /// A journal holding at most `capacity` events (oldest dropped
    /// first on overflow).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        EventJournal {
            ring: Mutex::new(Ring {
                slots: Vec::new(),
                capacity,
                head: 0,
            }),
            seq: AtomicU64::new(0),
            counters: JournalCounters::default(),
        }
    }

    /// Record one event at virtual time `at`.
    pub fn record(&self, at: VirtualTime, event: AdaptEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let entry = JournalEntry { at, seq, event };
        let kept = self.ring.lock().expect("journal lock poisoned").push(entry);
        self.counters
            .events_recorded
            .fetch_add(1, Ordering::Relaxed);
        if !kept {
            self.counters.events_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The counters, readable lock-free.
    pub fn counters(&self) -> &JournalCounters {
        &self.counters
    }

    /// Copy of the retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<JournalEntry> {
        self.ring.lock().expect("journal lock poisoned").snapshot()
    }
}

/// Cheap, cloneable handle threaded through engines, coordinator,
/// strategies and runtimes. A disabled handle makes every call a no-op
/// so un-instrumented runs pay only a branch.
#[derive(Debug, Clone, Default)]
pub struct JournalHandle {
    inner: Option<Arc<EventJournal>>,
}

impl JournalHandle {
    /// An active handle with the default ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// An active handle with an explicit ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        JournalHandle {
            inner: Some(Arc::new(EventJournal::with_capacity(capacity))),
        }
    }

    /// A no-op handle.
    pub fn disabled() -> Self {
        JournalHandle::default()
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event (no-op when disabled).
    #[inline]
    pub fn record(&self, at: VirtualTime, event: AdaptEvent) {
        if let Some(journal) = &self.inner {
            journal.record(at, event);
        }
    }

    /// Counters, if enabled. Strategies use this to fold observed I/O
    /// volume into their decisions without touching the event ring.
    pub fn counters(&self) -> Option<&JournalCounters> {
        self.inner.as_deref().map(EventJournal::counters)
    }

    /// Add routed tuples to the counter (no-op when disabled).
    #[inline]
    pub fn add_tuples_routed(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.tuples_routed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add spilled bytes to the counter (no-op when disabled).
    #[inline]
    pub fn add_spill_bytes(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.spill_bytes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add physically encoded spill-write bytes (no-op when disabled).
    #[inline]
    pub fn add_spill_bytes_written(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters
                .spill_bytes_written
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add physically encoded spill-read bytes (no-op when disabled).
    #[inline]
    pub fn add_spill_bytes_read(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.spill_bytes_read.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add relocated state bytes to the counter (no-op when disabled).
    #[inline]
    pub fn add_relocation_bytes(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.relocation_bytes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add physically encoded relocation-transfer bytes (no-op when
    /// disabled).
    #[inline]
    pub fn add_transfer_bytes(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.transfer_bytes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise the in-flight buffered-tuple gauge (steps 4–7).
    #[inline]
    pub fn add_buffered_in_flight(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters
                .buffered_in_flight
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count a purge pulse that ran with a held-back horizon (no-op
    /// when disabled).
    #[inline]
    pub fn add_purges_deferred(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.purges_deferred.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Accumulate virtual milliseconds the purge watermark was held
    /// back by a relocation round (no-op when disabled).
    #[inline]
    pub fn add_watermark_held_ms(&self, ms: u64) {
        if let Some(j) = &self.inner {
            j.counters
                .watermark_held_ms
                .fetch_add(ms, Ordering::Relaxed);
        }
    }

    /// Count tuples replayed in timestamp order at a step-7 flush
    /// (no-op when disabled).
    #[inline]
    pub fn add_replayed_in_order(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.replayed_in_order.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count faults injected by the chaos layer (no-op when disabled).
    #[inline]
    pub fn add_faults_injected(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.faults_injected.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count protocol messages re-sent after a phase timeout (no-op
    /// when disabled).
    #[inline]
    pub fn add_msgs_retried(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.msgs_retried.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count relocation rounds abandoned after retry exhaustion (no-op
    /// when disabled).
    #[inline]
    pub fn add_rounds_aborted(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.rounds_aborted.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count a held watermark released by the abort path instead of a
    /// step-7 Resume (no-op when disabled).
    #[inline]
    pub fn add_watermark_released_on_abort(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters
                .watermark_released_on_abort
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count relocation moves issued by the elastic rebalancing planner
    /// (no-op when disabled).
    #[inline]
    pub fn add_rebalance_moves(&self, n: u64) {
        if let Some(j) = &self.inner {
            j.counters.rebalance_moves.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Lower the in-flight buffered-tuple gauge (step 7 flush).
    #[inline]
    pub fn sub_buffered_in_flight(&self, n: u64) {
        if let Some(j) = &self.inner {
            let c = &j.counters.buffered_in_flight;
            let mut cur = c.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(n);
                match c.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Copy of the retained entries, oldest first (empty when disabled).
    pub fn snapshot(&self) -> Vec<JournalEntry> {
        self.inner
            .as_ref()
            .map(|j| j.snapshot())
            .unwrap_or_default()
    }
}

/// Merge per-engine journals into one timeline ordered by virtual time,
/// with each journal's own sequence numbers breaking ties so intra-
/// engine order is preserved.
pub fn merge_journals(journals: impl IntoIterator<Item = Vec<JournalEntry>>) -> Vec<JournalEntry> {
    let mut all: Vec<JournalEntry> = journals.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.at, e.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressure(engine: u16, used: u64) -> AdaptEvent {
        AdaptEvent::MemoryPressure {
            engine: EngineId(engine),
            used,
            budget: 100,
        }
    }

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let handle = JournalHandle::with_capacity(8);
        for i in 0..5u64 {
            handle.record(VirtualTime::from_millis(i * 10), pressure(0, i));
        }
        let snap = handle.snapshot();
        assert_eq!(snap.len(), 5);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.at.as_millis(), i as u64 * 10);
        }
    }

    #[test]
    fn ring_overflow_keeps_newest_and_counts_drops() {
        let handle = JournalHandle::with_capacity(4);
        for i in 0..10u64 {
            handle.record(VirtualTime::from_millis(i), pressure(0, i));
        }
        let snap = handle.snapshot();
        assert_eq!(snap.len(), 4);
        // Oldest six were overwritten; sequence numbers keep climbing.
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let counters = handle.counters().unwrap();
        assert_eq!(counters.events_recorded(), 10);
        assert_eq!(counters.events_dropped(), 6);
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let handle = JournalHandle::disabled();
        handle.record(VirtualTime::ZERO, pressure(0, 1));
        handle.add_spill_bytes(10);
        assert!(!handle.is_enabled());
        assert!(handle.snapshot().is_empty());
        assert!(handle.counters().is_none());
    }

    #[test]
    fn clones_share_one_ring() {
        let handle = JournalHandle::with_capacity(8);
        let clone = handle.clone();
        handle.record(VirtualTime::ZERO, pressure(0, 1));
        clone.record(VirtualTime::from_millis(1), pressure(1, 2));
        assert_eq!(handle.snapshot().len(), 2);
        assert_eq!(clone.snapshot()[0].seq, 0);
        assert_eq!(clone.snapshot()[1].seq, 1);
    }

    #[test]
    fn buffered_gauge_rises_and_falls() {
        let handle = JournalHandle::with_capacity(8);
        handle.add_buffered_in_flight(7);
        handle.add_buffered_in_flight(3);
        assert_eq!(handle.counters().unwrap().buffered_in_flight(), 10);
        handle.sub_buffered_in_flight(10);
        assert_eq!(handle.counters().unwrap().buffered_in_flight(), 0);
        // Saturates rather than wrapping.
        handle.sub_buffered_in_flight(5);
        assert_eq!(handle.counters().unwrap().buffered_in_flight(), 0);
    }

    #[test]
    fn watermark_counters_accumulate_and_absorb() {
        let handle = JournalHandle::with_capacity(8);
        handle.add_purges_deferred(3);
        handle.add_watermark_held_ms(250);
        handle.add_watermark_held_ms(50);
        handle.add_replayed_in_order(17);
        let c = handle.counters().unwrap();
        assert_eq!(c.purges_deferred(), 3);
        assert_eq!(c.watermark_held_ms(), 300);
        assert_eq!(c.replayed_in_order(), 17);
        let mut total = c.snapshot();
        total.absorb(&c.snapshot());
        assert_eq!(total.purges_deferred, 6);
        assert_eq!(total.watermark_held_ms, 600);
        assert_eq!(total.replayed_in_order, 34);
        // Disabled handles stay no-ops.
        let off = JournalHandle::disabled();
        off.add_purges_deferred(1);
        off.add_watermark_held_ms(1);
        off.add_replayed_in_order(1);
        assert!(off.counters().is_none());
    }

    #[test]
    fn chaos_counters_accumulate_and_absorb() {
        let handle = JournalHandle::with_capacity(8);
        handle.add_faults_injected(4);
        handle.add_msgs_retried(2);
        handle.add_rounds_aborted(1);
        handle.add_watermark_released_on_abort(1);
        let c = handle.counters().unwrap();
        assert_eq!(c.faults_injected(), 4);
        assert_eq!(c.msgs_retried(), 2);
        assert_eq!(c.rounds_aborted(), 1);
        assert_eq!(c.watermark_released_on_abort(), 1);
        let mut total = c.snapshot();
        total.absorb(&c.snapshot());
        assert_eq!(total.faults_injected, 8);
        assert_eq!(total.msgs_retried, 4);
        assert_eq!(total.rounds_aborted, 2);
        assert_eq!(total.watermark_released_on_abort, 2);
        // Disabled handles stay no-ops.
        let off = JournalHandle::disabled();
        off.add_faults_injected(1);
        off.add_msgs_retried(1);
        off.add_rounds_aborted(1);
        off.add_watermark_released_on_abort(1);
        assert!(off.counters().is_none());
    }

    #[test]
    fn byte_volume_counters_accumulate_and_derive_ratio() {
        let handle = JournalHandle::with_capacity(8);
        handle.add_spill_bytes(1000);
        handle.add_spill_bytes_written(250);
        handle.add_spill_bytes_read(250);
        handle.add_relocation_bytes(600);
        handle.add_transfer_bytes(150);
        let c = handle.counters().unwrap();
        assert_eq!(c.spill_bytes_written(), 250);
        assert_eq!(c.spill_bytes_read(), 250);
        assert_eq!(c.transfer_bytes(), 150);
        let snap = c.snapshot();
        assert_eq!(snap.spill_compression_ratio(), Some(4.0));
        let mut total = snap;
        total.absorb(&snap);
        assert_eq!(total.spill_bytes_written, 500);
        assert_eq!(total.spill_bytes_read, 500);
        assert_eq!(total.transfer_bytes, 300);
        // No encoded writes yet => no ratio (never a division by zero).
        assert_eq!(CountersSnapshot::default().spill_compression_ratio(), None);
        let off = JournalHandle::disabled();
        off.add_spill_bytes_written(1);
        off.add_spill_bytes_read(1);
        off.add_transfer_bytes(1);
        assert!(off.counters().is_none());
    }

    #[test]
    fn merge_orders_by_time_then_sequence() {
        let a = JournalHandle::with_capacity(8);
        let b = JournalHandle::with_capacity(8);
        a.record(VirtualTime::from_millis(20), pressure(0, 1));
        a.record(VirtualTime::from_millis(20), pressure(0, 2));
        b.record(VirtualTime::from_millis(10), pressure(1, 3));
        b.record(VirtualTime::from_millis(30), pressure(1, 4));
        let merged = merge_journals([a.snapshot(), b.snapshot()]);
        let times: Vec<u64> = merged.iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, vec![10, 20, 20, 30]);
        // The two t=20 events keep engine-a's internal order.
        assert!(merged[1].seq < merged[2].seq);
    }
}
