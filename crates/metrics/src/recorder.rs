//! Named-series recorder.

use std::collections::BTreeMap;

use dcape_common::time::VirtualTime;

use crate::series::TimeSeries;

/// A collection of named time series populated by an experiment driver.
///
/// Series names are free-form; the repro harness uses conventions like
/// `"throughput/k=30"` or `"mem/QE1"` and groups by prefix when
/// rendering.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    series: BTreeMap<String, TimeSeries>,
}

impl Recorder {
    /// New empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample to the named series, creating it on first use.
    pub fn record(&mut self, name: &str, t: VirtualTime, v: f64) {
        self.series.entry(name.to_owned()).or_default().push(t, v);
    }

    /// Fetch a series by exact name.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All series names (sorted — BTreeMap order).
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// All series whose name starts with `prefix`, sorted by name.
    pub fn with_prefix(&self, prefix: &str) -> Vec<(&str, &TimeSeries)> {
        self.series
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), v))
            .collect()
    }

    /// Merge another recorder's series into this one (names must not
    /// collide — experiment runs use distinct prefixes).
    pub fn merge(&mut self, other: Recorder) {
        for (name, series) in other.series {
            assert!(
                !self.series.contains_key(&name),
                "series name collision: {name}"
            );
            self.series.insert(name, series);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::from_millis(ms)
    }

    #[test]
    fn record_and_fetch() {
        let mut r = Recorder::new();
        r.record("throughput/k=10", t(0), 1.0);
        r.record("throughput/k=10", t(10), 2.0);
        r.record("mem/QE0", t(0), 100.0);
        assert_eq!(r.series("throughput/k=10").unwrap().len(), 2);
        assert!(r.series("nope").is_none());
        assert_eq!(r.names(), vec!["mem/QE0", "throughput/k=10"]);
    }

    #[test]
    fn prefix_grouping() {
        let mut r = Recorder::new();
        r.record("mem/QE0", t(0), 1.0);
        r.record("mem/QE1", t(0), 2.0);
        r.record("out/QE0", t(0), 3.0);
        let mems = r.with_prefix("mem/");
        assert_eq!(mems.len(), 2);
        assert_eq!(mems[0].0, "mem/QE0");
        assert_eq!(mems[1].0, "mem/QE1");
    }

    #[test]
    fn merge_disjoint() {
        let mut a = Recorder::new();
        a.record("x", t(0), 1.0);
        let mut b = Recorder::new();
        b.record("y", t(0), 2.0);
        a.merge(b);
        assert_eq!(a.names(), vec!["x", "y"]);
    }

    #[test]
    #[should_panic(expected = "collision")]
    fn merge_collision_panics() {
        let mut a = Recorder::new();
        a.record("x", t(0), 1.0);
        let mut b = Recorder::new();
        b.record("x", t(0), 2.0);
        a.merge(b);
    }
}
