//! Time series over virtual time.

use dcape_common::time::VirtualTime;

/// A named series of `(virtual time, value)` samples, appended in
/// non-decreasing time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(VirtualTime, f64)>,
}

impl TimeSeries {
    /// New empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Samples must arrive in non-decreasing time
    /// order; out-of-order samples are clamped to the last time (this
    /// only matters for mixed-source recording and keeps plots sane).
    pub fn push(&mut self, t: VirtualTime, v: f64) {
        let t = match self.points.last() {
            Some(&(last, _)) if t < last => last,
            _ => t,
        };
        self.points.push((t, v));
    }

    /// All samples.
    pub fn points(&self) -> &[(VirtualTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<(VirtualTime, f64)> {
        self.points.last().copied()
    }

    /// Value at or before `t` (step interpolation); `None` before the
    /// first sample.
    pub fn value_at(&self, t: VirtualTime) -> Option<f64> {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => None,
            i => Some(self.points[i - 1].1),
        }
    }

    /// Maximum value.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// Resample at fixed `step` intervals from time zero through the
    /// last sample (step interpolation), e.g. for table rendering.
    pub fn resample(&self, step: dcape_common::time::VirtualDuration) -> Vec<(VirtualTime, f64)> {
        let Some((end, _)) = self.last() else {
            return Vec::new();
        };
        assert!(step.as_millis() > 0, "step must be positive");
        let mut out = Vec::new();
        let mut t = VirtualTime::ZERO;
        while t <= end {
            if let Some(v) = self.value_at(t) {
                out.push((t, v));
            } else {
                out.push((t, 0.0));
            }
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::time::VirtualDuration;

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::from_millis(ms)
    }

    #[test]
    fn push_and_read() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(t(0), 1.0);
        s.push(t(10), 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((t(10), 2.0)));
        assert_eq!(s.points()[0], (t(0), 1.0));
    }

    #[test]
    fn out_of_order_clamped() {
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(5), 2.0);
        assert_eq!(s.points()[1].0, t(10));
    }

    #[test]
    fn value_at_step_interpolates() {
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(20), 2.0);
        assert_eq!(s.value_at(t(5)), None);
        assert_eq!(s.value_at(t(10)), Some(1.0));
        assert_eq!(s.value_at(t(15)), Some(1.0));
        assert_eq!(s.value_at(t(25)), Some(2.0));
    }

    #[test]
    fn max_and_resample() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        s.push(t(100), 5.0);
        s.push(t(200), 3.0);
        assert_eq!(s.max(), Some(5.0));
        let r = s.resample(VirtualDuration::from_millis(100));
        assert_eq!(r, vec![(t(0), 1.0), (t(100), 5.0), (t(200), 3.0)]);
        assert!(TimeSeries::new()
            .resample(VirtualDuration::from_millis(10))
            .is_empty());
        assert_eq!(TimeSeries::new().max(), None);
    }
}
