//! # dcape-metrics
//!
//! Experiment instrumentation: named time series over virtual time, a
//! recorder shared by drivers, and plain-text/CSV reporting used by the
//! `repro` harness to regenerate the paper's figures and tables.

pub mod journal;
pub mod recorder;
pub mod report;
pub mod series;
pub mod summary;

pub use journal::{
    merge_journals, AdaptEvent, CountersSnapshot, EventJournal, JournalCounters, JournalEntry,
    JournalHandle, SpillTrigger,
};
pub use recorder::Recorder;
pub use report::{
    journal_to_jsonl, render_journal, render_series_table, write_journal_jsonl, Table,
};
pub use series::TimeSeries;
pub use summary::Summary;
