//! # dcape-metrics
//!
//! Experiment instrumentation: named time series over virtual time, a
//! recorder shared by drivers, and plain-text/CSV reporting used by the
//! `repro` harness to regenerate the paper's figures and tables.

pub mod recorder;
pub mod report;
pub mod series;
pub mod summary;

pub use recorder::Recorder;
pub use report::{render_series_table, Table};
pub use series::TimeSeries;
pub use summary::Summary;
