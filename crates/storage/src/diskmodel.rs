//! Virtual-time cost model for disk I/O.
//!
//! The simulated cluster driver cannot rely on wall-clock I/O latency to
//! reproduce the paper's disk-cost effects (a scaled experiment finishes
//! in seconds), so it *charges* virtual time for every spill write and
//! cleanup read using this model: a fixed per-operation seek cost plus a
//! throughput term over the **accounted state bytes** (which include
//! `Pad` virtual payloads — the whole point of padding is to model big
//! state).
//!
//! Defaults approximate the paper's 2006-era SCSI disks (~8 ms seek,
//! ~60 MB/s sequential) — the *ratio* of disk to memory speed is what
//! shapes Figures 5/7/12, not the absolute numbers.

use dcape_common::time::VirtualDuration;

/// Charge model for one disk device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Fixed cost per operation (seek + syscall), in virtual milliseconds.
    pub seek_ms: u64,
    /// Sequential throughput in bytes per virtual millisecond
    /// (1 MB/s == 1_000 bytes/ms... strictly 1048.576, we use 10^6/10^3).
    pub bytes_per_ms: u64,
}

impl DiskModel {
    /// Paper-era default: 8 ms seek, 60 MB/s sequential.
    pub fn default_2006() -> Self {
        DiskModel {
            seek_ms: 8,
            bytes_per_ms: 60_000,
        }
    }

    /// An infinitely fast disk (all I/O free) — isolates algorithmic
    /// effects in ablation benches.
    pub fn free() -> Self {
        DiskModel {
            seek_ms: 0,
            bytes_per_ms: u64::MAX,
        }
    }

    /// Virtual time to write or read `bytes` in one operation.
    pub fn io_cost(&self, bytes: u64) -> VirtualDuration {
        let transfer = if self.bytes_per_ms == u64::MAX {
            0
        } else {
            bytes.div_ceil(self.bytes_per_ms.max(1))
        };
        VirtualDuration::from_millis(self.seek_ms + transfer)
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::default_2006()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_bytes() {
        let d = DiskModel::default_2006();
        let small = d.io_cost(1_000);
        let big = d.io_cost(60_000_000);
        assert!(big > small);
        // 60 MB at 60 MB/s ~ 1000 ms + 8 ms seek.
        assert_eq!(big.as_millis(), 1008);
    }

    #[test]
    fn seek_dominates_tiny_io() {
        let d = DiskModel::default_2006();
        assert_eq!(d.io_cost(0).as_millis(), 8);
        assert_eq!(d.io_cost(1).as_millis(), 9); // div_ceil
    }

    #[test]
    fn free_disk_costs_nothing() {
        let d = DiskModel::free();
        assert_eq!(d.io_cost(u64::MAX).as_millis(), 0);
    }

    #[test]
    fn zero_throughput_does_not_divide_by_zero() {
        let d = DiskModel {
            seek_ms: 1,
            bytes_per_ms: 0,
        };
        assert_eq!(d.io_cost(10).as_millis(), 11);
    }
}
