//! The spill store: per-partition segment registry + I/O statistics.
//!
//! Each query engine owns one [`SpillStore`]. The state-spill adaptation
//! pushes partition groups through [`SpillStore::spill_group`]; the
//! cleanup phase (§3: "organize the disk resident partition groups based
//! on their partition ID, merge partition groups with the same partition
//! ID and generate missing results") drains them back in spill order via
//! [`SpillStore::take_segments`].
//!
//! Note that "multiple partition groups may exist given one partition
//! ID" (§3): after a group is spilled, new tuples with the same ID
//! accumulate into a fresh in-memory group which may be spilled again —
//! hence a *list* of segments per partition.

use bytes::Bytes;

use dcape_common::error::Result;
use dcape_common::hash::FxHashMap;
use dcape_common::ids::PartitionId;

use crate::backend::{SegmentHandle, SpillBackend};
use crate::segment::{SegmentCodec, SpilledGroup};

/// Metadata retained in memory for one spilled segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Backend handle for retrieval.
    pub handle: SegmentHandle,
    /// Physically encoded bytes (what hit the backend).
    pub encoded_bytes: u64,
    /// Accounted state bytes (including `Pad` virtual payloads) — the
    /// amount the memory tracker was credited, and what the disk cost
    /// model charges for.
    pub state_bytes: u64,
    /// Tuples in the segment.
    pub tuples: u64,
}

/// Cumulative I/O statistics of one spill store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Number of segments written.
    pub segments_written: u64,
    /// Number of segments read back.
    pub segments_read: u64,
    /// Encoded bytes written.
    pub encoded_bytes_written: u64,
    /// Encoded bytes read.
    pub encoded_bytes_read: u64,
    /// Accounted state bytes written (drives the disk cost model).
    pub state_bytes_written: u64,
    /// Accounted state bytes read.
    pub state_bytes_read: u64,
    /// Tuples written.
    pub tuples_written: u64,
}

/// Registry of spilled segments for one query engine.
#[derive(Debug)]
pub struct SpillStore {
    backend: Box<dyn SpillBackend>,
    /// Spill-order list of segments per partition ID.
    segments: FxHashMap<PartitionId, Vec<SegmentMeta>>,
    /// Segment format used for writes (reads accept both).
    codec: SegmentCodec,
    stats: SpillStats,
}

impl SpillStore {
    /// Create a store over the given backend with the default
    /// (column-block) segment codec.
    pub fn new(backend: Box<dyn SpillBackend>) -> Self {
        Self::with_codec(backend, SegmentCodec::default())
    }

    /// Create a store with an explicit segment codec.
    pub fn with_codec(backend: Box<dyn SpillBackend>, codec: SegmentCodec) -> Self {
        SpillStore {
            backend,
            segments: FxHashMap::default(),
            codec,
            stats: SpillStats::default(),
        }
    }

    /// Convenience: store over a fresh in-memory backend.
    pub fn in_memory() -> Self {
        Self::new(Box::new(crate::backend::MemBackend::new()))
    }

    /// The segment codec used for writes.
    pub fn codec(&self) -> SegmentCodec {
        self.codec
    }

    /// Spill one partition group; returns its segment metadata.
    pub fn spill_group(&mut self, group: &SpilledGroup) -> Result<SegmentMeta> {
        let bytes = group.encode_with(self.codec);
        let state_bytes = group.state_bytes() as u64;
        let handle = self.backend.write_segment(&bytes)?;
        let meta = SegmentMeta {
            handle,
            encoded_bytes: bytes.len() as u64,
            state_bytes,
            tuples: group.tuple_count() as u64,
        };
        self.segments.entry(group.partition).or_default().push(meta);
        self.stats.segments_written += 1;
        self.stats.encoded_bytes_written += meta.encoded_bytes;
        self.stats.state_bytes_written += meta.state_bytes;
        self.stats.tuples_written += meta.tuples;
        Ok(meta)
    }

    /// Partitions that currently have disk-resident segments, sorted for
    /// deterministic cleanup order.
    pub fn partitions_with_segments(&self) -> Vec<PartitionId> {
        let mut pids: Vec<PartitionId> = self
            .segments
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(pid, _)| *pid)
            .collect();
        pids.sort_unstable();
        pids
    }

    /// Segment metadata for one partition, in spill order.
    pub fn segments_of(&self, pid: PartitionId) -> &[SegmentMeta] {
        self.segments.get(&pid).map_or(&[], Vec::as_slice)
    }

    /// Total number of disk-resident segments.
    pub fn segment_count(&self) -> usize {
        self.segments.values().map(Vec::len).sum()
    }

    /// Total accounted state bytes currently on disk.
    pub fn state_bytes_on_disk(&self) -> u64 {
        self.segments
            .values()
            .flat_map(|v| v.iter())
            .map(|m| m.state_bytes)
            .sum()
    }

    /// Read back and remove all segments of `pid`, in spill order
    /// (consumed by the cleanup phase).
    pub fn take_segments(&mut self, pid: PartitionId) -> Result<Vec<SpilledGroup>> {
        let metas = self.segments.remove(&pid).unwrap_or_default();
        let mut groups = Vec::with_capacity(metas.len());
        for meta in metas {
            let bytes: Bytes = self.backend.read_segment(meta.handle)?;
            self.stats.segments_read += 1;
            self.stats.encoded_bytes_read += bytes.len() as u64;
            self.stats.state_bytes_read += meta.state_bytes;
            let group = SpilledGroup::decode(bytes)?;
            self.backend.delete_segment(meta.handle)?;
            groups.push(group);
        }
        Ok(groups)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::time::VirtualTime;
    use dcape_common::tuple::TupleBuilder;

    fn group(pid: u32, n: u64) -> SpilledGroup {
        let mut g = SpilledGroup::empty(PartitionId(pid), 2);
        for s in 0..2u8 {
            for i in 0..n {
                g.per_stream[s as usize].push(
                    TupleBuilder::new(StreamId(s))
                        .seq(i)
                        .ts(VirtualTime::from_millis(i))
                        .value(i as i64)
                        .pad(100)
                        .build(),
                );
            }
        }
        g
    }

    #[test]
    fn spill_and_take_round_trip_in_order() {
        let mut store = SpillStore::in_memory();
        let g1 = group(5, 3);
        let g2 = group(5, 7);
        store.spill_group(&g1).unwrap();
        store.spill_group(&g2).unwrap();
        assert_eq!(store.segment_count(), 2);
        let back = store.take_segments(PartitionId(5)).unwrap();
        assert_eq!(back, vec![g1, g2]);
        assert_eq!(store.segment_count(), 0);
        assert!(store.take_segments(PartitionId(5)).unwrap().is_empty());
    }

    #[test]
    fn partitions_listed_sorted() {
        let mut store = SpillStore::in_memory();
        for pid in [9u32, 2, 5] {
            store.spill_group(&group(pid, 1)).unwrap();
        }
        assert_eq!(
            store.partitions_with_segments(),
            vec![PartitionId(2), PartitionId(5), PartitionId(9)]
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut store = SpillStore::in_memory();
        let g = group(1, 4);
        let meta = store.spill_group(&g).unwrap();
        assert_eq!(meta.tuples, 8);
        assert_eq!(meta.state_bytes, g.state_bytes() as u64);
        assert!(meta.encoded_bytes > 0);
        // Pads: state bytes ≫ encoded bytes (virtual payload).
        assert!(meta.state_bytes > meta.encoded_bytes);
        let s = store.stats();
        assert_eq!(s.segments_written, 1);
        assert_eq!(s.tuples_written, 8);
        assert_eq!(s.state_bytes_written, meta.state_bytes);
        let _ = store.take_segments(PartitionId(1)).unwrap();
        let s = store.stats();
        assert_eq!(s.segments_read, 1);
        assert_eq!(s.state_bytes_read, meta.state_bytes);
        assert_eq!(s.encoded_bytes_read, meta.encoded_bytes);
    }

    #[test]
    fn state_bytes_on_disk_tracks_live_segments() {
        let mut store = SpillStore::in_memory();
        let m1 = store.spill_group(&group(1, 2)).unwrap();
        let m2 = store.spill_group(&group(2, 3)).unwrap();
        assert_eq!(store.state_bytes_on_disk(), m1.state_bytes + m2.state_bytes);
        store.take_segments(PartitionId(1)).unwrap();
        assert_eq!(store.state_bytes_on_disk(), m2.state_bytes);
    }

    #[test]
    fn segments_of_reports_metadata() {
        let mut store = SpillStore::in_memory();
        store.spill_group(&group(3, 1)).unwrap();
        store.spill_group(&group(3, 2)).unwrap();
        let metas = store.segments_of(PartitionId(3));
        assert_eq!(metas.len(), 2);
        assert!(metas[0].tuples < metas[1].tuples);
        assert!(store.segments_of(PartitionId(99)).is_empty());
    }

    #[test]
    fn codec_choice_controls_written_bytes() {
        let g = group(1, 16);
        let mut rows = SpillStore::with_codec(
            Box::new(crate::backend::MemBackend::new()),
            SegmentCodec::Rows,
        );
        let mut cols = SpillStore::in_memory();
        assert_eq!(cols.codec(), SegmentCodec::Columns);
        let mr = rows.spill_group(&g).unwrap();
        let mc = cols.spill_group(&g).unwrap();
        assert!(
            mc.encoded_bytes < mr.encoded_bytes,
            "columnar {} vs rows {}",
            mc.encoded_bytes,
            mr.encoded_bytes
        );
        // Both read back to the same group.
        assert_eq!(rows.take_segments(PartitionId(1)).unwrap(), vec![g.clone()]);
        assert_eq!(cols.take_segments(PartitionId(1)).unwrap(), vec![g]);
    }

    #[test]
    fn file_backend_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("dcape-store-{}", std::process::id()));
        let mut store = SpillStore::new(Box::new(crate::backend::FileBackend::new(&dir).unwrap()));
        let g = group(11, 5);
        store.spill_group(&g).unwrap();
        let back = store.take_segments(PartitionId(11)).unwrap();
        assert_eq!(back, vec![g]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
