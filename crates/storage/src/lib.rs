//! # dcape-storage
//!
//! The spill substrate: everything needed to push partition groups to
//! disk and bring them back (§3 of the paper, "State Spill Adaptation").
//!
//! * [`codec`] — compact hand-rolled binary encoding of tuples (no
//!   external format crates).
//! * [`segment`] — a *spill segment*: the serialized snapshot of one
//!   partition group (all of its per-stream partitions together, per the
//!   partition-group granularity argument of §2/Figure 3(b)).
//! * [`backend`] — where segment bytes live: real files
//!   ([`backend::FileBackend`]) or memory ([`backend::MemBackend`] for
//!   tests and pure simulations).
//! * [`store`] — the [`store::SpillStore`]: per-partition segment
//!   registry plus I/O statistics.
//! * [`diskmodel`] — virtual-time cost model for spill I/O, used by the
//!   simulated cluster driver to charge for disk activity.
//! * [`trace`] — record/replay tuple streams as portable workload
//!   artifacts.

pub mod backend;
pub mod codec;
pub mod diskmodel;
pub mod segment;
pub mod store;
pub mod trace;

pub use backend::{FileBackend, MemBackend, SegmentHandle, SpillBackend};
pub use diskmodel::DiskModel;
pub use segment::{SegmentCodec, SpilledGroup};
pub use store::{SegmentMeta, SpillStats, SpillStore};
pub use trace::{TraceReader, TraceWriter};
