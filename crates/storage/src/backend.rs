//! Segment storage backends.
//!
//! [`SpillBackend`] abstracts where segment bytes physically live so the
//! same [`SpillStore`](crate::store::SpillStore) logic serves both the
//! threaded runtime (real files, real I/O — the paper's "slow secondary
//! storage") and deterministic tests/simulations (in-memory bytes with
//! the cost charged by [`crate::diskmodel`] instead).

use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;

use bytes::Bytes;

use dcape_common::error::{DcapeError, Result};

/// Opaque handle naming one stored segment within a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentHandle(pub u64);

/// Where spilled segment bytes live.
pub trait SpillBackend: Send + std::fmt::Debug {
    /// Persist `bytes` and return a handle for later retrieval.
    fn write_segment(&mut self, bytes: &Bytes) -> Result<SegmentHandle>;
    /// Load the bytes previously stored under `handle`.
    fn read_segment(&mut self, handle: SegmentHandle) -> Result<Bytes>;
    /// Drop the segment (cleanup consumed it).
    fn delete_segment(&mut self, handle: SegmentHandle) -> Result<()>;
}

/// Real files, one per segment, under a caller-owned directory.
///
/// Files are named `seg-<id>.dcape`. The backend never deletes the
/// directory itself; tests typically point it at a scratch dir they
/// remove afterwards.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    next_id: u64,
}

impl FileBackend {
    /// Create (if needed) `dir` and store segments inside it.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(FileBackend { dir, next_id: 0 })
    }

    fn path_for(&self, handle: SegmentHandle) -> PathBuf {
        self.dir.join(format!("seg-{}.dcape", handle.0))
    }

    /// The directory segments are stored in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

impl SpillBackend for FileBackend {
    fn write_segment(&mut self, bytes: &Bytes) -> Result<SegmentHandle> {
        let handle = SegmentHandle(self.next_id);
        self.next_id += 1;
        let path = self.path_for(handle);
        let mut f = fs::File::create(&path)?;
        f.write_all(bytes)?;
        f.sync_data().ok(); // best effort; tests on tmpfs don't care
        Ok(handle)
    }

    fn read_segment(&mut self, handle: SegmentHandle) -> Result<Bytes> {
        let path = self.path_for(handle);
        let mut f = fs::File::open(&path)
            .map_err(|e| DcapeError::state(format!("segment {handle:?} missing: {e}")))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf.into())
    }

    fn delete_segment(&mut self, handle: SegmentHandle) -> Result<()> {
        fs::remove_file(self.path_for(handle))?;
        Ok(())
    }
}

/// In-memory backend for tests and pure simulations.
#[derive(Debug, Default)]
pub struct MemBackend {
    segments: std::collections::HashMap<u64, Bytes>,
    next_id: u64,
}

impl MemBackend {
    /// New empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live segments (for tests).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if no segments are stored.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl SpillBackend for MemBackend {
    fn write_segment(&mut self, bytes: &Bytes) -> Result<SegmentHandle> {
        let handle = SegmentHandle(self.next_id);
        self.next_id += 1;
        self.segments.insert(handle.0, bytes.clone());
        Ok(handle)
    }

    fn read_segment(&mut self, handle: SegmentHandle) -> Result<Bytes> {
        self.segments
            .get(&handle.0)
            .cloned()
            .ok_or_else(|| DcapeError::state(format!("segment {handle:?} missing")))
    }

    fn delete_segment(&mut self, handle: SegmentHandle) -> Result<()> {
        self.segments
            .remove(&handle.0)
            .map(|_| ())
            .ok_or_else(|| DcapeError::state(format!("segment {handle:?} missing")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &mut dyn SpillBackend) {
        let a = backend
            .write_segment(&Bytes::from_static(b"alpha"))
            .unwrap();
        let b = backend.write_segment(&Bytes::from_static(b"beta")).unwrap();
        assert_ne!(a, b);
        assert_eq!(&backend.read_segment(a).unwrap()[..], b"alpha");
        assert_eq!(&backend.read_segment(b).unwrap()[..], b"beta");
        backend.delete_segment(a).unwrap();
        assert!(backend.read_segment(a).is_err());
        assert_eq!(&backend.read_segment(b).unwrap()[..], b"beta");
    }

    #[test]
    fn mem_backend_basic() {
        let mut m = MemBackend::new();
        assert!(m.is_empty());
        exercise(&mut m);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn file_backend_basic() {
        let dir = std::env::temp_dir().join(format!("dcape-test-{}", std::process::id()));
        let mut f = FileBackend::new(&dir).unwrap();
        exercise(&mut f);
        assert_eq!(f.dir(), dir.as_path());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_survives_reopen_reads() {
        let dir = std::env::temp_dir().join(format!("dcape-test2-{}", std::process::id()));
        let handle;
        {
            let mut f = FileBackend::new(&dir).unwrap();
            handle = f.write_segment(&Bytes::from_static(b"persist")).unwrap();
        }
        // A fresh backend over the same dir can't know next_id, but a
        // direct read of the same handle path still works.
        let mut f2 = FileBackend::new(&dir).unwrap();
        assert_eq!(&f2.read_segment(handle).unwrap()[..], b"persist");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_error() {
        let mut m = MemBackend::new();
        assert!(m.read_segment(SegmentHandle(99)).is_err());
        assert!(m.delete_segment(SegmentHandle(99)).is_err());
    }
}
