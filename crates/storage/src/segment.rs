//! Spill segments.
//!
//! A [`SpilledGroup`] is the unit the state-spill adaptation writes: one
//! partition group — the partitions of *all* input streams sharing one
//! partition ID (§2, Figure 3(b)). Spilling whole groups is what frees
//! the cleanup process from timestamp bookkeeping: within a segment, all
//! run-time results among its tuples were already produced before the
//! spill, so the cleanup only needs cross-segment combinations (§3).
//!
//! The binary layout is:
//!
//! ```text
//! segment := MAGIC:u32 VERSION:u8 partition:varint nstreams:varint
//!            (count:varint tuple*)^nstreams
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::PartitionId;
use dcape_common::mem::HeapSize;
use dcape_common::tuple::Tuple;

use crate::codec::{
    decode_tuple, encode_tuple, encoded_tuple_len, get_varint, put_varint, varint_len,
};

const MAGIC: u32 = 0xDCA9_E501;
const VERSION: u8 = 1;

/// One spilled partition group: per-stream tuple lists for one partition
/// ID, exactly as they sat in memory at spill time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpilledGroup {
    /// The partition ID of the group.
    pub partition: PartitionId,
    /// `per_stream[s]` holds the tuples of input stream `s`.
    pub per_stream: Vec<Vec<Tuple>>,
}

impl SpilledGroup {
    /// New empty group for `partition` with `num_streams` inputs.
    pub fn empty(partition: PartitionId, num_streams: usize) -> Self {
        SpilledGroup {
            partition,
            per_stream: vec![Vec::new(); num_streams],
        }
    }

    /// Total number of tuples across all streams.
    pub fn tuple_count(&self) -> usize {
        self.per_stream.iter().map(Vec::len).sum()
    }

    /// Estimated in-memory state bytes of the group's tuples (what the
    /// memory tracker had accounted before the spill).
    pub fn state_bytes(&self) -> usize {
        self.per_stream
            .iter()
            .flat_map(|v| v.iter())
            .map(HeapSize::heap_size)
            .sum()
    }

    /// True if the group holds no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.per_stream.iter().all(Vec::is_empty)
    }

    /// Exact byte length [`SpilledGroup::encode`] will produce, so the
    /// encode buffer is allocated once with no growth reallocations.
    pub fn encoded_len(&self) -> usize {
        let mut len = 4 + 1 // magic + version
            + varint_len(self.partition.0 as u64)
            + varint_len(self.per_stream.len() as u64);
        for stream_tuples in &self.per_stream {
            len += varint_len(stream_tuples.len() as u64);
            len += stream_tuples.iter().map(encoded_tuple_len).sum::<usize>();
        }
        len
    }

    /// Serialize to segment bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        put_varint(&mut buf, self.partition.0 as u64);
        put_varint(&mut buf, self.per_stream.len() as u64);
        for stream_tuples in &self.per_stream {
            put_varint(&mut buf, stream_tuples.len() as u64);
            for t in stream_tuples {
                encode_tuple(&mut buf, t);
            }
        }
        buf.freeze()
    }

    /// Deserialize from segment bytes.
    pub fn decode(mut bytes: Bytes) -> Result<Self> {
        if bytes.remaining() < 5 {
            return Err(DcapeError::codec("segment: short header"));
        }
        let magic = bytes.get_u32_le();
        if magic != MAGIC {
            return Err(DcapeError::codec(format!(
                "segment: bad magic 0x{magic:08x}"
            )));
        }
        let version = bytes.get_u8();
        if version != VERSION {
            return Err(DcapeError::codec(format!(
                "segment: unsupported version {version}"
            )));
        }
        let partition = PartitionId(get_varint(&mut bytes)? as u32);
        let nstreams = get_varint(&mut bytes)? as usize;
        if nstreams > 256 {
            return Err(DcapeError::codec("segment: implausible stream count"));
        }
        let mut per_stream = Vec::with_capacity(nstreams);
        for _ in 0..nstreams {
            let count = get_varint(&mut bytes)? as usize;
            let mut tuples = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                tuples.push(decode_tuple(&mut bytes)?);
            }
            per_stream.push(tuples);
        }
        if bytes.has_remaining() {
            return Err(DcapeError::codec("segment: trailing bytes"));
        }
        Ok(SpilledGroup {
            partition,
            per_stream,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::time::VirtualTime;
    use dcape_common::tuple::TupleBuilder;

    fn group() -> SpilledGroup {
        let mut g = SpilledGroup::empty(PartitionId(17), 3);
        for s in 0..3u8 {
            for i in 0..5u64 {
                g.per_stream[s as usize].push(
                    TupleBuilder::new(StreamId(s))
                        .seq(i)
                        .ts(VirtualTime::from_millis(i * 30))
                        .value((i * 10 + s as u64) as i64)
                        .pad(64)
                        .build(),
                );
            }
        }
        g
    }

    #[test]
    fn round_trip() {
        let g = group();
        let bytes = g.encode();
        let out = SpilledGroup::decode(bytes).unwrap();
        assert_eq!(out, g);
    }

    #[test]
    fn encoded_len_is_exact() {
        for g in [
            group(),
            SpilledGroup::empty(PartitionId(0), 3),
            SpilledGroup::empty(PartitionId(u32::MAX), 1),
        ] {
            assert_eq!(g.encode().len(), g.encoded_len());
        }
        // Mixed value types, large seq/ts varints.
        let mut g = SpilledGroup::empty(PartitionId(300), 2);
        g.per_stream[0].push(
            TupleBuilder::new(StreamId(0))
                .seq(u64::MAX)
                .ts(VirtualTime::from_millis(1 << 40))
                .value("a long-ish text value")
                .value(-1i64)
                .value(2.5f64)
                .pad(1_000_000)
                .build(),
        );
        assert_eq!(g.encode().len(), g.encoded_len());
    }

    #[test]
    fn counts_and_sizes() {
        let g = group();
        assert_eq!(g.tuple_count(), 15);
        assert!(!g.is_empty());
        assert!(g.state_bytes() > 15 * 64, "pads must be accounted");
        let e = SpilledGroup::empty(PartitionId(0), 3);
        assert!(e.is_empty());
        assert_eq!(e.tuple_count(), 0);
        assert_eq!(e.state_bytes(), 0);
    }

    #[test]
    fn empty_group_round_trips() {
        let g = SpilledGroup::empty(PartitionId(3), 4);
        assert_eq!(SpilledGroup::decode(g.encode()).unwrap(), g);
    }

    #[test]
    fn bad_magic_rejected() {
        let g = group();
        let mut bytes = g.encode().to_vec();
        bytes[0] ^= 0xFF;
        assert!(SpilledGroup::decode(bytes.into()).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let g = group();
        let mut bytes = g.encode().to_vec();
        bytes[4] = 99;
        assert!(SpilledGroup::decode(bytes.into()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let g = group();
        let mut bytes = g.encode().to_vec();
        bytes.push(0);
        assert!(SpilledGroup::decode(bytes.into()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let g = group();
        let bytes = g.encode();
        for cut in [5usize, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SpilledGroup::decode(bytes.slice(..cut)).is_err(),
                "cut at {cut} should fail"
            );
        }
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Segment decoding of arbitrary bytes must never panic.
        #[test]
        fn decode_segment_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = SpilledGroup::decode(Bytes::from(data));
        }

        /// Corrupting any single byte of a valid segment either still
        /// round-trips (header-padding bits) or errors — never panics.
        #[test]
        fn bit_flips_never_panic(idx in 0usize..200, flip in 1u8..255) {
            let mut g = SpilledGroup::empty(PartitionId(3), 3);
            for s in 0..3u8 {
                for i in 0..4u64 {
                    g.per_stream[s as usize].push(
                        dcape_common::tuple::TupleBuilder::new(dcape_common::ids::StreamId(s))
                            .seq(i)
                            .value(i as i64)
                            .build(),
                    );
                }
            }
            let mut bytes = g.encode().to_vec();
            let idx = idx % bytes.len();
            bytes[idx] ^= flip;
            let _ = SpilledGroup::decode(bytes.into());
        }
    }
}
