//! Spill segments.
//!
//! A [`SpilledGroup`] is the unit the state-spill adaptation writes: one
//! partition group — the partitions of *all* input streams sharing one
//! partition ID (§2, Figure 3(b)). Spilling whole groups is what frees
//! the cleanup process from timestamp bookkeeping: within a segment, all
//! run-time results among its tuples were already produced before the
//! spill, so the cleanup only needs cross-segment combinations (§3).
//!
//! The binary layout is:
//!
//! ```text
//! segment := MAGIC:u32 VERSION:u8 partition:varint nstreams:varint body
//!   VERSION 1 (rows)    body := (count:varint tuple*)^nstreams
//!   VERSION 2 (columns) body := stream-block^nstreams
//! ```
//!
//! Version 2 is the default: each stream's tuples become one column
//! block (delta-coded timestamps/sequence numbers, dictionary-coded
//! low-cardinality payload columns — see [`crate::codec`]), typically a
//! fraction of the row encoding's size. Version 1 remains readable and
//! writable ([`SpilledGroup::encode_rows`]) as the uncompressed
//! baseline.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::PartitionId;
use dcape_common::mem::HeapSize;
use dcape_common::tuple::Tuple;

use crate::codec::{
    decode_stream_block, decode_tuple, encode_stream_block, encode_tuple, encoded_tuple_len,
    get_varint, put_varint, varint_len,
};

const MAGIC: u32 = 0xDCA9_E501;
const VERSION_ROWS: u8 = 1;
const VERSION_COLUMNS: u8 = 2;

/// Which segment format spill writes use. Decoding always accepts both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentCodec {
    /// Version 1: verbatim row-by-row tuple encoding.
    Rows,
    /// Version 2: compressed column blocks (the default).
    #[default]
    Columns,
}

/// One spilled partition group: per-stream tuple lists for one partition
/// ID, exactly as they sat in memory at spill time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpilledGroup {
    /// The partition ID of the group.
    pub partition: PartitionId,
    /// `per_stream[s]` holds the tuples of input stream `s`.
    pub per_stream: Vec<Vec<Tuple>>,
}

impl SpilledGroup {
    /// New empty group for `partition` with `num_streams` inputs.
    pub fn empty(partition: PartitionId, num_streams: usize) -> Self {
        SpilledGroup {
            partition,
            per_stream: vec![Vec::new(); num_streams],
        }
    }

    /// Total number of tuples across all streams.
    pub fn tuple_count(&self) -> usize {
        self.per_stream.iter().map(Vec::len).sum()
    }

    /// Estimated in-memory state bytes of the group's tuples (what the
    /// memory tracker had accounted before the spill).
    pub fn state_bytes(&self) -> usize {
        self.per_stream
            .iter()
            .flat_map(|v| v.iter())
            .map(HeapSize::heap_size)
            .sum()
    }

    /// True if the group holds no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.per_stream.iter().all(Vec::is_empty)
    }

    /// Exact byte length [`SpilledGroup::encode_rows`] will produce, so
    /// the encode buffer is allocated once with no growth reallocations.
    pub fn encoded_rows_len(&self) -> usize {
        let mut len = 4 + 1 // magic + version
            + varint_len(self.partition.0 as u64)
            + varint_len(self.per_stream.len() as u64);
        for stream_tuples in &self.per_stream {
            len += varint_len(stream_tuples.len() as u64);
            len += stream_tuples.iter().map(encoded_tuple_len).sum::<usize>();
        }
        len
    }

    /// Serialize to version-1 row-format segment bytes (the
    /// uncompressed baseline; [`SpilledGroup::encode`] is the default).
    pub fn encode_rows(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_rows_len());
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION_ROWS);
        put_varint(&mut buf, self.partition.0 as u64);
        put_varint(&mut buf, self.per_stream.len() as u64);
        for stream_tuples in &self.per_stream {
            put_varint(&mut buf, stream_tuples.len() as u64);
            for t in stream_tuples {
                encode_tuple(&mut buf, t);
            }
        }
        buf.freeze()
    }

    /// Serialize to version-2 column-block segment bytes.
    pub fn encode(&self) -> Bytes {
        // Compressed size is data-dependent; start from a round
        // per-tuple guess and let the buffer grow if a payload is fat.
        let mut buf = BytesMut::with_capacity(32 + self.tuple_count() * 16);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION_COLUMNS);
        put_varint(&mut buf, self.partition.0 as u64);
        put_varint(&mut buf, self.per_stream.len() as u64);
        for stream_tuples in &self.per_stream {
            encode_stream_block(&mut buf, stream_tuples);
        }
        buf.freeze()
    }

    /// Serialize with an explicit segment codec.
    pub fn encode_with(&self, codec: SegmentCodec) -> Bytes {
        match codec {
            SegmentCodec::Rows => self.encode_rows(),
            SegmentCodec::Columns => self.encode(),
        }
    }

    /// Deserialize from segment bytes (either format version).
    pub fn decode(mut bytes: Bytes) -> Result<Self> {
        if bytes.remaining() < 5 {
            return Err(DcapeError::codec("segment: short header"));
        }
        let magic = bytes.get_u32_le();
        if magic != MAGIC {
            return Err(DcapeError::codec(format!(
                "segment: bad magic 0x{magic:08x}"
            )));
        }
        let version = bytes.get_u8();
        if version != VERSION_ROWS && version != VERSION_COLUMNS {
            return Err(DcapeError::codec(format!(
                "segment: unsupported version {version}"
            )));
        }
        let partition = PartitionId(get_varint(&mut bytes)? as u32);
        let nstreams = get_varint(&mut bytes)? as usize;
        if nstreams > 256 {
            return Err(DcapeError::codec("segment: implausible stream count"));
        }
        let mut per_stream = Vec::with_capacity(nstreams);
        for _ in 0..nstreams {
            if version == VERSION_ROWS {
                let count = get_varint(&mut bytes)? as usize;
                let mut tuples = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    tuples.push(decode_tuple(&mut bytes)?);
                }
                per_stream.push(tuples);
            } else {
                per_stream.push(decode_stream_block(&mut bytes)?);
            }
        }
        if bytes.has_remaining() {
            return Err(DcapeError::codec("segment: trailing bytes"));
        }
        Ok(SpilledGroup {
            partition,
            per_stream,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::time::VirtualTime;
    use dcape_common::tuple::TupleBuilder;

    fn group() -> SpilledGroup {
        let mut g = SpilledGroup::empty(PartitionId(17), 3);
        for s in 0..3u8 {
            for i in 0..5u64 {
                g.per_stream[s as usize].push(
                    TupleBuilder::new(StreamId(s))
                        .seq(i)
                        .ts(VirtualTime::from_millis(i * 30))
                        .value((i * 10 + s as u64) as i64)
                        .pad(64)
                        .build(),
                );
            }
        }
        g
    }

    #[test]
    fn round_trip() {
        let g = group();
        for codec in [SegmentCodec::Rows, SegmentCodec::Columns] {
            let out = SpilledGroup::decode(g.encode_with(codec)).unwrap();
            assert_eq!(out, g, "{codec:?}");
        }
    }

    #[test]
    fn encoded_rows_len_is_exact() {
        for g in [
            group(),
            SpilledGroup::empty(PartitionId(0), 3),
            SpilledGroup::empty(PartitionId(u32::MAX), 1),
        ] {
            assert_eq!(g.encode_rows().len(), g.encoded_rows_len());
        }
        // Mixed value types, large seq/ts varints.
        let mut g = SpilledGroup::empty(PartitionId(300), 2);
        g.per_stream[0].push(
            TupleBuilder::new(StreamId(0))
                .seq(u64::MAX)
                .ts(VirtualTime::from_millis(1 << 40))
                .value("a long-ish text value")
                .value(-1i64)
                .value(2.5f64)
                .pad(1_000_000)
                .build(),
        );
        assert_eq!(g.encode_rows().len(), g.encoded_rows_len());
        // Heterogeneous tuples must round-trip through the columnar
        // segment too (per-stream row fallback).
        assert_eq!(SpilledGroup::decode(g.encode()).unwrap(), g);
    }

    #[test]
    fn columnar_segment_is_smaller_on_regular_data() {
        let g = group();
        assert!(
            g.encode().len() < g.encode_rows().len(),
            "column blocks should compress the regular spill shape"
        );
    }

    #[test]
    fn counts_and_sizes() {
        let g = group();
        assert_eq!(g.tuple_count(), 15);
        assert!(!g.is_empty());
        assert!(g.state_bytes() > 15 * 64, "pads must be accounted");
        let e = SpilledGroup::empty(PartitionId(0), 3);
        assert!(e.is_empty());
        assert_eq!(e.tuple_count(), 0);
        assert_eq!(e.state_bytes(), 0);
    }

    #[test]
    fn empty_group_round_trips() {
        let g = SpilledGroup::empty(PartitionId(3), 4);
        assert_eq!(SpilledGroup::decode(g.encode()).unwrap(), g);
        assert_eq!(SpilledGroup::decode(g.encode_rows()).unwrap(), g);
    }

    #[test]
    fn bad_magic_rejected() {
        let g = group();
        let mut bytes = g.encode().to_vec();
        bytes[0] ^= 0xFF;
        assert!(SpilledGroup::decode(bytes.into()).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let g = group();
        let mut bytes = g.encode().to_vec();
        bytes[4] = 99;
        assert!(SpilledGroup::decode(bytes.into()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let g = group();
        let mut bytes = g.encode().to_vec();
        bytes.push(0);
        assert!(SpilledGroup::decode(bytes.into()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let g = group();
        for codec in [SegmentCodec::Rows, SegmentCodec::Columns] {
            let bytes = g.encode_with(codec);
            for cut in [5usize, 10, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    SpilledGroup::decode(bytes.slice(..cut)).is_err(),
                    "{codec:?}: cut at {cut} should fail"
                );
            }
        }
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Segment decoding of arbitrary bytes must never panic.
        #[test]
        fn decode_segment_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = SpilledGroup::decode(Bytes::from(data));
        }

        /// Corrupting any single byte of a valid segment (either
        /// format) either still round-trips (header-padding bits) or
        /// errors — never panics.
        #[test]
        fn bit_flips_never_panic(idx in 0usize..200, flip in 1u8..255, columnar in any::<bool>()) {
            let mut g = SpilledGroup::empty(PartitionId(3), 3);
            for s in 0..3u8 {
                for i in 0..4u64 {
                    g.per_stream[s as usize].push(
                        dcape_common::tuple::TupleBuilder::new(dcape_common::ids::StreamId(s))
                            .seq(i)
                            .value(i as i64)
                            .build(),
                    );
                }
            }
            let codec = if columnar { SegmentCodec::Columns } else { SegmentCodec::Rows };
            let mut bytes = g.encode_with(codec).to_vec();
            let idx = idx % bytes.len();
            bytes[idx] ^= flip;
            let _ = SpilledGroup::decode(bytes.into());
        }
    }
}
