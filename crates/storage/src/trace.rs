//! Workload traces: record a tuple stream to disk and replay it.
//!
//! The paper's evaluation uses a dedicated stream-generator machine;
//! traces make experiment inputs *portable artifacts* instead — a run
//! can be captured once (e.g. from `dcape-streamgen`) and replayed
//! byte-identically across machines, branches, and debugging sessions.
//!
//! Format: `MAGIC:u32 VERSION:u8 (len:u32_le tuple)* len=0 sentinel`.
//! Each tuple is length-prefixed so the reader can stream without
//! loading the file and can detect truncation.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Bytes, BytesMut};

use dcape_common::error::{DcapeError, Result};
use dcape_common::tuple::Tuple;

use crate::codec::{decode_tuple, encode_tuple};

const MAGIC: u32 = 0xDCA9_E7AC;
const VERSION: u8 = 1;

/// Streaming trace writer.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    count: u64,
    finished: bool,
}

impl TraceWriter {
    /// Create (truncate) a trace file.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&[VERSION])?;
        Ok(TraceWriter {
            out,
            count: 0,
            finished: false,
        })
    }

    /// Append one tuple.
    pub fn write(&mut self, tuple: &Tuple) -> Result<()> {
        debug_assert!(!self.finished, "write after finish");
        let mut buf = BytesMut::with_capacity(64);
        encode_tuple(&mut buf, tuple);
        self.out.write_all(&(buf.len() as u32).to_le_bytes())?;
        self.out.write_all(&buf)?;
        self.count += 1;
        Ok(())
    }

    /// Tuples written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Write the end sentinel and flush. Must be called exactly once.
    pub fn finish(mut self) -> Result<u64> {
        self.out.write_all(&0u32.to_le_bytes())?;
        self.out.flush()?;
        self.finished = true;
        Ok(self.count)
    }
}

/// Streaming trace reader; iterates tuples in recorded order.
#[derive(Debug)]
pub struct TraceReader {
    input: BufReader<File>,
    done: bool,
    count: u64,
}

impl TraceReader {
    /// Open a trace file, validating its header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let mut input = BufReader::new(File::open(path)?);
        let mut header = [0u8; 5];
        input
            .read_exact(&mut header)
            .map_err(|_| DcapeError::codec("trace: short header"))?;
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(DcapeError::codec(format!("trace: bad magic 0x{magic:08x}")));
        }
        if header[4] != VERSION {
            return Err(DcapeError::codec(format!(
                "trace: unsupported version {}",
                header[4]
            )));
        }
        Ok(TraceReader {
            input,
            done: false,
            count: 0,
        })
    }

    fn read_next(&mut self) -> Result<Option<Tuple>> {
        if self.done {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        self.input
            .read_exact(&mut len_bytes)
            .map_err(|_| DcapeError::codec("trace: truncated before sentinel"))?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len == 0 {
            self.done = true;
            return Ok(None);
        }
        if len > 1 << 24 {
            return Err(DcapeError::codec("trace: implausible record length"));
        }
        let mut buf = vec![0u8; len];
        self.input
            .read_exact(&mut buf)
            .map_err(|_| DcapeError::codec("trace: truncated record"))?;
        let mut bytes: Bytes = buf.into();
        let tuple = decode_tuple(&mut bytes)?;
        if bytes.has_remaining() {
            return Err(DcapeError::codec("trace: trailing bytes in record"));
        }
        self.count += 1;
        Ok(Some(tuple))
    }

    /// Tuples read so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

use bytes::Buf;

impl Iterator for TraceReader {
    type Item = Result<Tuple>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.read_next().transpose();
        // Fuse after an error: a corrupt stream must surface exactly one
        // error, not repeat it forever.
        if matches!(item, Some(Err(_))) {
            self.done = true;
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::time::VirtualTime;
    use dcape_common::tuple::TupleBuilder;

    fn tuples(n: u64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                TupleBuilder::new(StreamId((i % 3) as u8))
                    .seq(i)
                    .ts(VirtualTime::from_millis(i * 30))
                    .value(i as i64 % 7)
                    .pad(32)
                    .build()
            })
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dcape-trace-{}-{name}", std::process::id()))
    }

    #[test]
    fn record_and_replay_round_trips() {
        let path = tmp("roundtrip");
        let original = tuples(100);
        let mut w = TraceWriter::create(&path).unwrap();
        for t in &original {
            w.write(t).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 100);

        let reader = TraceReader::open(&path).unwrap();
        let replayed: Vec<Tuple> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(replayed, original);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trace_round_trips() {
        let path = tmp("empty");
        let w = TraceWriter::create(&path).unwrap();
        assert_eq!(w.finish().unwrap(), 0);
        let mut reader = TraceReader::open(&path).unwrap();
        assert!(reader.next().is_none());
        assert_eq!(reader.count(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_trace_is_an_error_not_a_panic() {
        let path = tmp("trunc");
        let mut w = TraceWriter::create(&path).unwrap();
        for t in tuples(10) {
            w.write(&t).unwrap();
        }
        w.finish().unwrap();
        // Chop off the sentinel and part of the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let reader = TraceReader::open(&path).unwrap();
        let results: Vec<Result<Tuple>> = reader.collect();
        assert!(results.last().unwrap().is_err(), "truncation must surface");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_header_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOPE!").unwrap();
        assert!(TraceReader::open(&path).is_err());
        std::fs::write(&path, b"X").unwrap();
        assert!(TraceReader::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
