//! Compact binary encoding for tuples and values.
//!
//! Hand-rolled on top of the `bytes` crate so the workspace needs no
//! external serialization format. The format is little-endian with
//! LEB128-style varints for lengths and sequence numbers:
//!
//! ```text
//! value  := tag:u8 payload
//!   0x00 Null
//!   0x01 Int      zigzag varint
//!   0x02 Double   8 bytes LE bits
//!   0x03 Bool     u8
//!   0x04 Text     varint len + utf8 bytes
//!   0x05 Blob     varint len + bytes
//!   0x06 Pad      varint virtual-length       (no payload bytes!)
//! tuple  := stream:u8 seq:varint ts:varint arity:varint value*
//! ```
//!
//! `Pad` encodes its *virtual* length only — the whole point of `Pad` is
//! to model large state without materializing it; the disk cost model
//! charges for the virtual bytes separately (see [`crate::diskmodel`]).

use bytes::{Buf, BufMut};

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::StreamId;
use dcape_common::time::VirtualTime;
use dcape_common::tuple::Tuple;
use dcape_common::value::Value;

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_DOUBLE: u8 = 0x02;
const TAG_BOOL: u8 = 0x03;
const TAG_TEXT: u8 = 0x04;
const TAG_BLOB: u8 = 0x05;
const TAG_PAD: u8 = 0x06;

/// Append an unsigned varint (LEB128).
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an unsigned varint (LEB128).
pub fn get_varint(buf: &mut impl Buf) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DcapeError::codec("varint: unexpected end of input"));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(DcapeError::codec("varint: overflow"));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Exact encoded length of an unsigned varint (LEB128), in bytes.
#[inline]
pub fn varint_len(v: u64) -> usize {
    // ceil(bits/7), with 0 encoding as one byte.
    (9 * (64 - v.leading_zeros()) as usize + 64) / 64
}

/// Exact encoded length of one value, in bytes.
pub fn encoded_value_len(v: &Value) -> usize {
    1 + match v {
        Value::Null => 0,
        Value::Int(i) => varint_len(zigzag(*i)),
        Value::Double(_) => 8,
        Value::Bool(_) => 1,
        Value::Text(s) => varint_len(s.len() as u64) + s.len(),
        Value::Blob(b) => varint_len(b.len() as u64) + b.len(),
        Value::Pad(n) => varint_len(*n as u64),
    }
}

/// Exact encoded length of one tuple, in bytes.
pub fn encoded_tuple_len(t: &Tuple) -> usize {
    1 + varint_len(t.seq())
        + varint_len(t.ts().as_millis())
        + varint_len(t.arity() as u64)
        + t.values().iter().map(encoded_value_len).sum::<usize>()
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode one value.
pub fn encode_value(buf: &mut impl BufMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            put_varint(buf, zigzag(*i));
        }
        Value::Double(d) => {
            buf.put_u8(TAG_DOUBLE);
            buf.put_u64_le(d.to_bits());
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Text(s) => {
            buf.put_u8(TAG_TEXT);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        Value::Blob(b) => {
            buf.put_u8(TAG_BLOB);
            put_varint(buf, b.len() as u64);
            buf.put_slice(b);
        }
        Value::Pad(n) => {
            buf.put_u8(TAG_PAD);
            put_varint(buf, *n as u64);
        }
    }
}

/// Decode one value.
pub fn decode_value(buf: &mut impl Buf) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(DcapeError::codec("value: unexpected end of input"));
    }
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(unzigzag(get_varint(buf)?))),
        TAG_DOUBLE => {
            if buf.remaining() < 8 {
                return Err(DcapeError::codec("double: short input"));
            }
            Ok(Value::Double(f64::from_bits(buf.get_u64_le())))
        }
        TAG_BOOL => {
            if !buf.has_remaining() {
                return Err(DcapeError::codec("bool: short input"));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        TAG_TEXT => {
            let len = get_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(DcapeError::codec("text: short input"));
            }
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            let s = String::from_utf8(bytes)
                .map_err(|e| DcapeError::codec(format!("text: invalid utf8: {e}")))?;
            Ok(Value::text(s))
        }
        TAG_BLOB => {
            let len = get_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(DcapeError::codec("blob: short input"));
            }
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            Ok(Value::Blob(bytes.into()))
        }
        TAG_PAD => {
            let n = get_varint(buf)?;
            u32::try_from(n)
                .map(Value::Pad)
                .map_err(|_| DcapeError::codec("pad: length exceeds u32"))
        }
        tag => Err(DcapeError::codec(format!("unknown value tag 0x{tag:02x}"))),
    }
}

/// Encode one tuple.
pub fn encode_tuple(buf: &mut impl BufMut, t: &Tuple) {
    buf.put_u8(t.stream().0);
    put_varint(buf, t.seq());
    put_varint(buf, t.ts().as_millis());
    put_varint(buf, t.arity() as u64);
    for v in t.values() {
        encode_value(buf, v);
    }
}

/// Decode one tuple.
pub fn decode_tuple(buf: &mut impl Buf) -> Result<Tuple> {
    if !buf.has_remaining() {
        return Err(DcapeError::codec("tuple: unexpected end of input"));
    }
    let stream = StreamId(buf.get_u8());
    let seq = get_varint(buf)?;
    let ts = VirtualTime::from_millis(get_varint(buf)?);
    let arity = get_varint(buf)? as usize;
    if arity > 1 << 20 {
        return Err(DcapeError::codec("tuple: implausible arity"));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf)?);
    }
    Ok(Tuple::new(stream, seq, ts, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{Bytes, BytesMut};
    use dcape_common::tuple::TupleBuilder;
    use proptest::prelude::*;

    fn round_trip_value(v: &Value) -> Value {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, v);
        let mut bytes = buf.freeze();
        let out = decode_value(&mut bytes).unwrap();
        assert!(!bytes.has_remaining(), "trailing bytes after decode");
        out
    }

    #[test]
    fn value_round_trips() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Int(-1),
            Value::Double(3.25),
            Value::Double(f64::NAN),
            Value::Bool(true),
            Value::Bool(false),
            Value::text(""),
            Value::text("bank1.offerCurrency"),
            Value::Blob(Bytes::from_static(b"\x00\x01\x02")),
            Value::Pad(0),
            Value::Pad(u32::MAX),
        ] {
            assert_eq!(round_trip_value(&v), v);
        }
    }

    #[test]
    fn encoded_lens_are_exact() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Int(-64),
            Value::Double(3.25),
            Value::Bool(true),
            Value::text(""),
            Value::text("bank1.offerCurrency"),
            Value::Blob(Bytes::from_static(b"\x00\x01\x02")),
            Value::Pad(0),
            Value::Pad(u32::MAX),
        ] {
            let mut buf = BytesMut::new();
            encode_value(&mut buf, &v);
            assert_eq!(buf.len(), encoded_value_len(&v), "{v:?}");
        }
        let t = TupleBuilder::new(StreamId(2))
            .seq(u64::MAX)
            .ts(VirtualTime::from_millis(98765))
            .value(42i64)
            .value("EUR")
            .pad(512)
            .build();
        let mut buf = BytesMut::new();
        encode_tuple(&mut buf, &t);
        assert_eq!(buf.len(), encoded_tuple_len(&t));
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            (1 << 21) - 1,
            1 << 21,
            (1 << 63) - 1,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v={v}");
        }
    }

    #[test]
    fn pad_encodes_virtually_not_physically() {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &Value::Pad(1_000_000));
        assert!(buf.len() < 8, "pad must not materialize payload bytes");
    }

    #[test]
    fn tuple_round_trips() {
        let t = TupleBuilder::new(StreamId(2))
            .seq(12345)
            .ts(VirtualTime::from_millis(98765))
            .value(42i64)
            .value("EUR")
            .value(1.5f64)
            .pad(512)
            .build();
        let mut buf = BytesMut::new();
        encode_tuple(&mut buf, &t);
        let mut bytes = buf.freeze();
        let out = decode_tuple(&mut bytes).unwrap();
        assert_eq!(out, t);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let t = TupleBuilder::new(StreamId(0))
            .value(7i64)
            .value("abc")
            .build();
        let mut buf = BytesMut::new();
        encode_tuple(&mut buf, &t);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert!(
                decode_tuple(&mut partial).is_err(),
                "decode of {cut}/{} bytes should fail",
                full.len()
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut b = Bytes::from_static(&[0xFF]);
        assert!(decode_value(&mut b).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x04); // TEXT
        put_varint(&mut buf, 2);
        buf.put_slice(&[0xC3, 0x28]); // invalid utf8
        let mut bytes = buf.freeze();
        assert!(decode_value(&mut bytes).is_err());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 bytes of continuation => > 64 bits.
        let mut b = Bytes::from_static(&[0x80; 11]);
        assert!(get_varint(&mut b).is_err());
    }

    proptest! {
        #[test]
        fn prop_int_round_trip(v in any::<i64>()) {
            prop_assert_eq!(round_trip_value(&Value::Int(v)), Value::Int(v));
        }

        #[test]
        fn prop_text_round_trip(s in ".{0,64}") {
            let v = Value::text(&s);
            prop_assert_eq!(round_trip_value(&v), v);
        }

        #[test]
        fn prop_tuple_round_trip(
            stream in 0u8..4,
            seq in any::<u64>(),
            ts in any::<u64>(),
            ints in proptest::collection::vec(any::<i64>(), 0..8),
        ) {
            let values: Vec<Value> = ints.into_iter().map(Value::Int).collect();
            let t = Tuple::new(StreamId(stream), seq, VirtualTime::from_millis(ts), values);
            let mut buf = BytesMut::new();
            encode_tuple(&mut buf, &t);
            let mut bytes = buf.freeze();
            prop_assert_eq!(decode_tuple(&mut bytes).unwrap(), t);
        }

        #[test]
        fn prop_zigzag_round_trip(v in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    proptest! {
        /// Decoding arbitrary bytes must never panic — it returns a
        /// value (when the bytes happen to parse) or an error.
        #[test]
        fn decode_value_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut b = Bytes::from(data);
            let _ = decode_value(&mut b);
        }

        #[test]
        fn decode_tuple_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut b = Bytes::from(data);
            let _ = decode_tuple(&mut b);
        }
    }
}
