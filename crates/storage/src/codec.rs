//! Compact binary encoding for tuples and values.
//!
//! Hand-rolled on top of the `bytes` crate so the workspace needs no
//! external serialization format. The format is little-endian with
//! LEB128-style varints for lengths and sequence numbers:
//!
//! ```text
//! value  := tag:u8 payload
//!   0x00 Null
//!   0x01 Int      zigzag varint
//!   0x02 Double   8 bytes LE bits
//!   0x03 Bool     u8
//!   0x04 Text     varint len + utf8 bytes
//!   0x05 Blob     varint len + bytes
//!   0x06 Pad      varint virtual-length       (no payload bytes!)
//! tuple  := stream:u8 seq:varint ts:varint arity:varint value*
//! ```
//!
//! `Pad` encodes its *virtual* length only — the whole point of `Pad` is
//! to model large state without materializing it; the disk cost model
//! charges for the virtual bytes separately (see [`crate::diskmodel`]).

use bytes::{Buf, BufMut};

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::StreamId;
use dcape_common::time::VirtualTime;
use dcape_common::tuple::Tuple;
use dcape_common::value::Value;

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_DOUBLE: u8 = 0x02;
const TAG_BOOL: u8 = 0x03;
const TAG_TEXT: u8 = 0x04;
const TAG_BLOB: u8 = 0x05;
const TAG_PAD: u8 = 0x06;

/// Append an unsigned varint (LEB128).
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an unsigned varint (LEB128).
pub fn get_varint(buf: &mut impl Buf) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DcapeError::codec("varint: unexpected end of input"));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(DcapeError::codec("varint: overflow"));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Exact encoded length of an unsigned varint (LEB128), in bytes.
#[inline]
pub fn varint_len(v: u64) -> usize {
    // ceil(bits/7), with 0 encoding as one byte.
    (9 * (64 - v.leading_zeros()) as usize + 64) / 64
}

/// Exact encoded length of one value, in bytes.
pub fn encoded_value_len(v: &Value) -> usize {
    1 + match v {
        Value::Null => 0,
        Value::Int(i) => varint_len(zigzag(*i)),
        Value::Double(_) => 8,
        Value::Bool(_) => 1,
        Value::Text(s) => varint_len(s.len() as u64) + s.len(),
        Value::Blob(b) => varint_len(b.len() as u64) + b.len(),
        Value::Pad(n) => varint_len(*n as u64),
    }
}

/// Exact encoded length of one tuple, in bytes.
pub fn encoded_tuple_len(t: &Tuple) -> usize {
    1 + varint_len(t.seq())
        + varint_len(t.ts().as_millis())
        + varint_len(t.arity() as u64)
        + t.values().iter().map(encoded_value_len).sum::<usize>()
}

#[inline]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode one value.
pub fn encode_value(buf: &mut impl BufMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            put_varint(buf, zigzag(*i));
        }
        Value::Double(d) => {
            buf.put_u8(TAG_DOUBLE);
            buf.put_u64_le(d.to_bits());
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Text(s) => {
            buf.put_u8(TAG_TEXT);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        Value::Blob(b) => {
            buf.put_u8(TAG_BLOB);
            put_varint(buf, b.len() as u64);
            buf.put_slice(b);
        }
        Value::Pad(n) => {
            buf.put_u8(TAG_PAD);
            put_varint(buf, *n as u64);
        }
    }
}

/// Decode one value.
pub fn decode_value(buf: &mut impl Buf) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(DcapeError::codec("value: unexpected end of input"));
    }
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(unzigzag(get_varint(buf)?))),
        TAG_DOUBLE => {
            if buf.remaining() < 8 {
                return Err(DcapeError::codec("double: short input"));
            }
            Ok(Value::Double(f64::from_bits(buf.get_u64_le())))
        }
        TAG_BOOL => {
            if !buf.has_remaining() {
                return Err(DcapeError::codec("bool: short input"));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        TAG_TEXT => {
            let len = get_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(DcapeError::codec("text: short input"));
            }
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            let s = String::from_utf8(bytes)
                .map_err(|e| DcapeError::codec(format!("text: invalid utf8: {e}")))?;
            Ok(Value::text(s))
        }
        TAG_BLOB => {
            let len = get_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(DcapeError::codec("blob: short input"));
            }
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            Ok(Value::Blob(bytes.into()))
        }
        TAG_PAD => {
            let n = get_varint(buf)?;
            u32::try_from(n)
                .map(Value::Pad)
                .map_err(|_| DcapeError::codec("pad: length exceeds u32"))
        }
        tag => Err(DcapeError::codec(format!("unknown value tag 0x{tag:02x}"))),
    }
}

/// Encode one tuple.
pub fn encode_tuple(buf: &mut impl BufMut, t: &Tuple) {
    buf.put_u8(t.stream().0);
    put_varint(buf, t.seq());
    put_varint(buf, t.ts().as_millis());
    put_varint(buf, t.arity() as u64);
    for v in t.values() {
        encode_value(buf, v);
    }
}

/// Decode one tuple.
pub fn decode_tuple(buf: &mut impl Buf) -> Result<Tuple> {
    if !buf.has_remaining() {
        return Err(DcapeError::codec("tuple: unexpected end of input"));
    }
    let stream = StreamId(buf.get_u8());
    let seq = get_varint(buf)?;
    let ts = VirtualTime::from_millis(get_varint(buf)?);
    let arity = get_varint(buf)? as usize;
    if arity > 1 << 20 {
        return Err(DcapeError::codec("tuple: implausible arity"));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf)?);
    }
    Ok(Tuple::new(stream, seq, ts, values))
}

// ---------------------------------------------------------------------
// Column blocks.
//
// A *stream block* is the columnar encoding of one stream's tuple list
// inside a spill segment (format version 2; see [`crate::segment`]):
//
// ```text
// block  := count:varint [count > 0: layout:u8 body]
//   layout 0 (rows)     body := tuple*            (heterogeneous fallback)
//   layout 1 (columnar) body := stream:u8 arity:varint
//                               seq-col ts-col value-col^arity
// seq-col, ts-col := first:varint (zigzag-varint delta)*   -- delta coded
// value-col := ctag:u8 payload
//   0x00 Null        (no payload)
//   0x01 Int         zigzag varint per row
//   0x02 Double      8 bytes LE bits per row
//   0x03 Bool        u8 per row
//   0x04 Text dict   ndict:varint (len:varint utf8)* index:varint per row
//   0x05 Blob dict   ndict:varint (len:varint bytes)* index:varint per row
//   0x06 Pad const   n:varint                    (whole column, one value)
//   0x07 Pad         n:varint per row
//   0x08 Mixed       value* (tagged per-row fallback)
// ```
//
// The columnar layout requires a uniform stream ID and arity across the
// block (true for any block a partition group produces); anything else
// falls back to the row layout. Monotone timestamps and dense sequence
// numbers delta-code to one or two bytes per row, and low-cardinality
// text/blob columns store each distinct payload once.

const LAYOUT_ROWS: u8 = 0;
const LAYOUT_COLUMNAR: u8 = 1;

const CT_NULL: u8 = 0x00;
const CT_INT: u8 = 0x01;
const CT_DOUBLE: u8 = 0x02;
const CT_BOOL: u8 = 0x03;
const CT_TEXT_DICT: u8 = 0x04;
const CT_BLOB_DICT: u8 = 0x05;
const CT_PAD_CONST: u8 = 0x06;
const CT_PAD: u8 = 0x07;
const CT_MIXED: u8 = 0x08;

/// Delta-code a u64 column: first value verbatim, then zigzag-varint
/// differences (wrapping, so arbitrary jumps still round-trip).
fn put_delta_column(buf: &mut impl BufMut, values: impl Iterator<Item = u64>) {
    let mut prev: Option<u64> = None;
    for v in values {
        match prev {
            None => put_varint(buf, v),
            Some(p) => put_varint(buf, zigzag((v as i64).wrapping_sub(p as i64))),
        }
        prev = Some(v);
    }
}

fn get_delta_column(buf: &mut impl Buf, count: usize) -> Result<Vec<u64>> {
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        let v = if i == 0 {
            get_varint(buf)?
        } else {
            let prev = *out.last().expect("i > 0");
            (prev as i64).wrapping_add(unzigzag(get_varint(buf)?)) as u64
        };
        out.push(v);
    }
    Ok(out)
}

/// Pick the column encoding for value column `c` of a uniform block.
fn column_tag(tuples: &[Tuple], c: usize) -> u8 {
    let uniform = |f: fn(&Value) -> bool| tuples.iter().all(|t| f(&t.values()[c]));
    match &tuples[0].values()[c] {
        Value::Null if uniform(|v| matches!(v, Value::Null)) => CT_NULL,
        Value::Int(_) if uniform(|v| matches!(v, Value::Int(_))) => CT_INT,
        Value::Double(_) if uniform(|v| matches!(v, Value::Double(_))) => CT_DOUBLE,
        Value::Bool(_) if uniform(|v| matches!(v, Value::Bool(_))) => CT_BOOL,
        Value::Text(_) if uniform(|v| matches!(v, Value::Text(_))) => CT_TEXT_DICT,
        Value::Blob(_) if uniform(|v| matches!(v, Value::Blob(_))) => CT_BLOB_DICT,
        Value::Pad(n) if uniform(|v| matches!(v, Value::Pad(_))) => {
            if tuples.iter().all(|t| t.values()[c] == Value::Pad(*n)) {
                CT_PAD_CONST
            } else {
                CT_PAD
            }
        }
        _ => CT_MIXED,
    }
}

fn encode_column(buf: &mut impl BufMut, tuples: &[Tuple], c: usize) {
    let tag = column_tag(tuples, c);
    buf.put_u8(tag);
    let col = tuples.iter().map(|t| &t.values()[c]);
    match tag {
        CT_NULL => {}
        CT_INT => {
            for v in col {
                let Value::Int(i) = v else { unreachable!() };
                put_varint(buf, zigzag(*i));
            }
        }
        CT_DOUBLE => {
            for v in col {
                let Value::Double(d) = v else { unreachable!() };
                buf.put_u64_le(d.to_bits());
            }
        }
        CT_BOOL => {
            for v in col {
                let Value::Bool(b) = v else { unreachable!() };
                buf.put_u8(*b as u8);
            }
        }
        CT_PAD_CONST => {
            let Value::Pad(n) = tuples[0].values()[c] else {
                unreachable!()
            };
            put_varint(buf, n as u64);
        }
        CT_PAD => {
            for v in col {
                let Value::Pad(n) = v else { unreachable!() };
                put_varint(buf, *n as u64);
            }
        }
        CT_TEXT_DICT => {
            let mut dict: Vec<&str> = Vec::new();
            let mut map: dcape_common::hash::FxHashMap<&str, u64> =
                dcape_common::hash::FxHashMap::default();
            let mut indexes: Vec<u64> = Vec::with_capacity(tuples.len());
            for v in col {
                let Value::Text(s) = v else { unreachable!() };
                let id = *map.entry(s.as_ref()).or_insert_with(|| {
                    dict.push(s);
                    (dict.len() - 1) as u64
                });
                indexes.push(id);
            }
            put_varint(buf, dict.len() as u64);
            for s in dict {
                put_varint(buf, s.len() as u64);
                buf.put_slice(s.as_bytes());
            }
            for id in indexes {
                put_varint(buf, id);
            }
        }
        CT_BLOB_DICT => {
            let mut dict: Vec<&[u8]> = Vec::new();
            let mut map: dcape_common::hash::FxHashMap<&[u8], u64> =
                dcape_common::hash::FxHashMap::default();
            let mut indexes: Vec<u64> = Vec::with_capacity(tuples.len());
            for v in col {
                let Value::Blob(b) = v else { unreachable!() };
                let id = *map.entry(b.as_ref()).or_insert_with(|| {
                    dict.push(b);
                    (dict.len() - 1) as u64
                });
                indexes.push(id);
            }
            put_varint(buf, dict.len() as u64);
            for b in dict {
                put_varint(buf, b.len() as u64);
                buf.put_slice(b);
            }
            for id in indexes {
                put_varint(buf, id);
            }
        }
        _ => {
            for v in col {
                encode_value(buf, v);
            }
        }
    }
}

fn decode_column(buf: &mut impl Buf, count: usize) -> Result<Vec<Value>> {
    if !buf.has_remaining() {
        return Err(DcapeError::codec("column: unexpected end of input"));
    }
    let tag = buf.get_u8();
    let mut out = Vec::with_capacity(count.min(1 << 20));
    match tag {
        CT_NULL => out.resize(count, Value::Null),
        CT_INT => {
            for _ in 0..count {
                out.push(Value::Int(unzigzag(get_varint(buf)?)));
            }
        }
        CT_DOUBLE => {
            for _ in 0..count {
                if buf.remaining() < 8 {
                    return Err(DcapeError::codec("double column: short input"));
                }
                out.push(Value::Double(f64::from_bits(buf.get_u64_le())));
            }
        }
        CT_BOOL => {
            for _ in 0..count {
                if !buf.has_remaining() {
                    return Err(DcapeError::codec("bool column: short input"));
                }
                out.push(Value::Bool(buf.get_u8() != 0));
            }
        }
        CT_PAD_CONST => {
            let n = u32::try_from(get_varint(buf)?)
                .map_err(|_| DcapeError::codec("pad column: length exceeds u32"))?;
            out.resize(count, Value::Pad(n));
        }
        CT_PAD => {
            for _ in 0..count {
                let n = u32::try_from(get_varint(buf)?)
                    .map_err(|_| DcapeError::codec("pad column: length exceeds u32"))?;
                out.push(Value::Pad(n));
            }
        }
        CT_TEXT_DICT | CT_BLOB_DICT => {
            let ndict = get_varint(buf)? as usize;
            if ndict > count {
                return Err(DcapeError::codec("column dict larger than column"));
            }
            let mut dict: Vec<Value> = Vec::with_capacity(ndict);
            for _ in 0..ndict {
                let len = get_varint(buf)? as usize;
                if buf.remaining() < len {
                    return Err(DcapeError::codec("column dict entry: short input"));
                }
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                dict.push(if tag == CT_TEXT_DICT {
                    let s = String::from_utf8(bytes)
                        .map_err(|e| DcapeError::codec(format!("dict text: invalid utf8: {e}")))?;
                    Value::text(s)
                } else {
                    Value::Blob(bytes.into())
                });
            }
            for _ in 0..count {
                let id = get_varint(buf)? as usize;
                let v = dict
                    .get(id)
                    .ok_or_else(|| DcapeError::codec("column dict index out of range"))?;
                out.push(v.clone());
            }
        }
        CT_MIXED => {
            for _ in 0..count {
                out.push(decode_value(buf)?);
            }
        }
        tag => return Err(DcapeError::codec(format!("unknown column tag 0x{tag:02x}"))),
    }
    Ok(out)
}

/// Encode one stream's tuple list as a column block.
pub fn encode_stream_block(buf: &mut impl BufMut, tuples: &[Tuple]) {
    put_varint(buf, tuples.len() as u64);
    if tuples.is_empty() {
        return;
    }
    let stream = tuples[0].stream();
    let arity = tuples[0].arity();
    if !tuples
        .iter()
        .all(|t| t.stream() == stream && t.arity() == arity)
    {
        buf.put_u8(LAYOUT_ROWS);
        for t in tuples {
            encode_tuple(buf, t);
        }
        return;
    }
    buf.put_u8(LAYOUT_COLUMNAR);
    buf.put_u8(stream.0);
    put_varint(buf, arity as u64);
    put_delta_column(buf, tuples.iter().map(Tuple::seq));
    put_delta_column(buf, tuples.iter().map(|t| t.ts().as_millis()));
    for c in 0..arity {
        encode_column(buf, tuples, c);
    }
}

/// Decode one stream's column block back into its tuple list.
pub fn decode_stream_block(buf: &mut impl Buf) -> Result<Vec<Tuple>> {
    let count = get_varint(buf)? as usize;
    if count == 0 {
        return Ok(Vec::new());
    }
    if !buf.has_remaining() {
        return Err(DcapeError::codec("block: unexpected end of input"));
    }
    match buf.get_u8() {
        LAYOUT_ROWS => {
            let mut tuples = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                tuples.push(decode_tuple(buf)?);
            }
            Ok(tuples)
        }
        LAYOUT_COLUMNAR => {
            if !buf.has_remaining() {
                return Err(DcapeError::codec("block: missing stream id"));
            }
            let stream = StreamId(buf.get_u8());
            let arity = get_varint(buf)? as usize;
            if arity > 1 << 20 {
                return Err(DcapeError::codec("block: implausible arity"));
            }
            let seqs = get_delta_column(buf, count)?;
            let tss = get_delta_column(buf, count)?;
            let mut columns: Vec<Vec<Value>> = Vec::with_capacity(arity.min(1 << 10));
            for _ in 0..arity {
                columns.push(decode_column(buf, count)?);
            }
            let mut tuples = Vec::with_capacity(count.min(1 << 20));
            for i in 0..count {
                let values: Vec<Value> = columns.iter().map(|col| col[i].clone()).collect();
                tuples.push(Tuple::new(
                    stream,
                    seqs[i],
                    VirtualTime::from_millis(tss[i]),
                    values,
                ));
            }
            Ok(tuples)
        }
        b => Err(DcapeError::codec(format!("unknown block layout 0x{b:02x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{Bytes, BytesMut};
    use dcape_common::tuple::TupleBuilder;
    use proptest::prelude::*;

    fn round_trip_value(v: &Value) -> Value {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, v);
        let mut bytes = buf.freeze();
        let out = decode_value(&mut bytes).unwrap();
        assert!(!bytes.has_remaining(), "trailing bytes after decode");
        out
    }

    #[test]
    fn value_round_trips() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Int(-1),
            Value::Double(3.25),
            Value::Double(f64::NAN),
            Value::Bool(true),
            Value::Bool(false),
            Value::text(""),
            Value::text("bank1.offerCurrency"),
            Value::Blob(Bytes::from_static(b"\x00\x01\x02")),
            Value::Pad(0),
            Value::Pad(u32::MAX),
        ] {
            assert_eq!(round_trip_value(&v), v);
        }
    }

    #[test]
    fn encoded_lens_are_exact() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Int(-64),
            Value::Double(3.25),
            Value::Bool(true),
            Value::text(""),
            Value::text("bank1.offerCurrency"),
            Value::Blob(Bytes::from_static(b"\x00\x01\x02")),
            Value::Pad(0),
            Value::Pad(u32::MAX),
        ] {
            let mut buf = BytesMut::new();
            encode_value(&mut buf, &v);
            assert_eq!(buf.len(), encoded_value_len(&v), "{v:?}");
        }
        let t = TupleBuilder::new(StreamId(2))
            .seq(u64::MAX)
            .ts(VirtualTime::from_millis(98765))
            .value(42i64)
            .value("EUR")
            .pad(512)
            .build();
        let mut buf = BytesMut::new();
        encode_tuple(&mut buf, &t);
        assert_eq!(buf.len(), encoded_tuple_len(&t));
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            (1 << 21) - 1,
            1 << 21,
            (1 << 63) - 1,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v={v}");
        }
    }

    #[test]
    fn pad_encodes_virtually_not_physically() {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &Value::Pad(1_000_000));
        assert!(buf.len() < 8, "pad must not materialize payload bytes");
    }

    #[test]
    fn tuple_round_trips() {
        let t = TupleBuilder::new(StreamId(2))
            .seq(12345)
            .ts(VirtualTime::from_millis(98765))
            .value(42i64)
            .value("EUR")
            .value(1.5f64)
            .pad(512)
            .build();
        let mut buf = BytesMut::new();
        encode_tuple(&mut buf, &t);
        let mut bytes = buf.freeze();
        let out = decode_tuple(&mut bytes).unwrap();
        assert_eq!(out, t);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let t = TupleBuilder::new(StreamId(0))
            .value(7i64)
            .value("abc")
            .build();
        let mut buf = BytesMut::new();
        encode_tuple(&mut buf, &t);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert!(
                decode_tuple(&mut partial).is_err(),
                "decode of {cut}/{} bytes should fail",
                full.len()
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut b = Bytes::from_static(&[0xFF]);
        assert!(decode_value(&mut b).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x04); // TEXT
        put_varint(&mut buf, 2);
        buf.put_slice(&[0xC3, 0x28]); // invalid utf8
        let mut bytes = buf.freeze();
        assert!(decode_value(&mut bytes).is_err());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 bytes of continuation => > 64 bits.
        let mut b = Bytes::from_static(&[0x80; 11]);
        assert!(get_varint(&mut b).is_err());
    }

    fn block_round_trip(tuples: &[Tuple]) {
        let mut buf = BytesMut::new();
        encode_stream_block(&mut buf, tuples);
        let mut bytes = buf.freeze();
        let out = decode_stream_block(&mut bytes).unwrap();
        assert_eq!(out, tuples);
        assert!(!bytes.has_remaining(), "trailing bytes after block decode");
    }

    #[test]
    fn stream_block_round_trips_uniform_columns() {
        let currencies = ["EUR", "USD", "JPY"];
        let tuples: Vec<Tuple> = (0..50u64)
            .map(|i| {
                TupleBuilder::new(StreamId(1))
                    .seq(i)
                    .ts(VirtualTime::from_millis(i * 30))
                    .value((i % 7) as i64)
                    .value(currencies[(i % 3) as usize])
                    .pad(1024)
                    .build()
            })
            .collect();
        block_round_trip(&tuples);
    }

    #[test]
    fn stream_block_round_trips_every_column_kind() {
        let tuples: Vec<Tuple> = (0..20u64)
            .map(|i| {
                TupleBuilder::new(StreamId(0))
                    .seq(i * 3 + 1)
                    .ts(VirtualTime::from_millis(1_000_000 + i))
                    .value(Value::Null)
                    .value(-(i as i64) * 1001)
                    .value(i as f64 * 0.5)
                    .value(i % 2 == 0)
                    .value(Value::Blob(Bytes::from(vec![(i % 4) as u8; 16])))
                    .pad((i % 5) as u32 * 100)
                    .build()
            })
            .collect();
        block_round_trip(&tuples);
    }

    #[test]
    fn stream_block_round_trips_mixed_type_column() {
        // One column alternates Int/Text => CT_MIXED fallback.
        let tuples: Vec<Tuple> = (0..10u64)
            .map(|i| {
                let b = TupleBuilder::new(StreamId(2)).seq(i);
                if i % 2 == 0 {
                    b.value(i as i64).build()
                } else {
                    b.value("odd").build()
                }
            })
            .collect();
        block_round_trip(&tuples);
    }

    #[test]
    fn stream_block_ragged_arity_falls_back_to_rows() {
        let mut tuples = vec![
            TupleBuilder::new(StreamId(0)).seq(0).value(1i64).build(),
            TupleBuilder::new(StreamId(0))
                .seq(1)
                .value(2i64)
                .value("extra")
                .build(),
        ];
        block_round_trip(&tuples);
        // Mixed stream IDs too.
        tuples[1] = TupleBuilder::new(StreamId(1)).seq(1).value(2i64).build();
        block_round_trip(&tuples);
    }

    #[test]
    fn empty_block_round_trips() {
        block_round_trip(&[]);
    }

    #[test]
    fn stream_block_beats_row_encoding_on_repetitive_data() {
        // Monotone timestamps, dense seqs, low-cardinality blob payloads:
        // exactly the spill-heavy shape the columnar format targets.
        let templates: Vec<Bytes> = (0..4u8).map(|t| Bytes::from(vec![t; 256])).collect();
        let tuples: Vec<Tuple> = (0..200u64)
            .map(|i| {
                TupleBuilder::new(StreamId(0))
                    .seq(i)
                    .ts(VirtualTime::from_millis(i * 30))
                    .value((i % 9) as i64)
                    .value(Value::Blob(templates[(i % 4) as usize].clone()))
                    .build()
            })
            .collect();
        let mut cols = BytesMut::new();
        encode_stream_block(&mut cols, &tuples);
        let rows: usize = tuples.iter().map(encoded_tuple_len).sum();
        assert!(
            cols.len() * 2 < rows,
            "columnar {} should be well under half of row {}",
            cols.len(),
            rows
        );
    }

    #[test]
    fn truncated_blocks_error_not_panic() {
        let tuples: Vec<Tuple> = (0..8u64)
            .map(|i| {
                TupleBuilder::new(StreamId(1))
                    .seq(i)
                    .ts(VirtualTime::from_millis(i))
                    .value(i as i64)
                    .value("abc")
                    .build()
            })
            .collect();
        let mut buf = BytesMut::new();
        encode_stream_block(&mut buf, &tuples);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert!(
                decode_stream_block(&mut partial).is_err(),
                "decode of {cut}/{} bytes should fail",
                full.len()
            );
        }
    }

    #[test]
    fn dict_index_out_of_range_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1); // count
        buf.put_u8(LAYOUT_COLUMNAR);
        buf.put_u8(0); // stream
        put_varint(&mut buf, 1); // arity
        put_varint(&mut buf, 0); // seq
        put_varint(&mut buf, 0); // ts
        buf.put_u8(CT_TEXT_DICT);
        put_varint(&mut buf, 1); // ndict
        put_varint(&mut buf, 1); // entry len
        buf.put_u8(b'x');
        put_varint(&mut buf, 5); // index out of range
        let mut bytes = buf.freeze();
        assert!(decode_stream_block(&mut bytes).is_err());
    }

    #[test]
    fn oversized_dict_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1); // count
        buf.put_u8(LAYOUT_COLUMNAR);
        buf.put_u8(0);
        put_varint(&mut buf, 1); // arity
        put_varint(&mut buf, 0); // seq
        put_varint(&mut buf, 0); // ts
        buf.put_u8(CT_BLOB_DICT);
        put_varint(&mut buf, 9); // ndict > count
        let mut bytes = buf.freeze();
        assert!(decode_stream_block(&mut bytes).is_err());
    }

    proptest! {
        #[test]
        fn prop_int_round_trip(v in any::<i64>()) {
            prop_assert_eq!(round_trip_value(&Value::Int(v)), Value::Int(v));
        }

        #[test]
        fn prop_stream_block_round_trip(
            seqs in proptest::collection::vec(any::<u64>(), 0..40),
            key_mod in 1i64..10,
            ts_step in 0u64..100,
        ) {
            let tuples: Vec<Tuple> = seqs
                .iter()
                .enumerate()
                .map(|(i, &seq)| {
                    TupleBuilder::new(StreamId(1))
                        .seq(seq)
                        .ts(VirtualTime::from_millis(i as u64 * ts_step))
                        .value(seq as i64 % key_mod)
                        .value(["a", "bb", "ccc"][i % 3])
                        .build()
                })
                .collect();
            let mut buf = BytesMut::new();
            encode_stream_block(&mut buf, &tuples);
            let mut bytes = buf.freeze();
            prop_assert_eq!(decode_stream_block(&mut bytes).unwrap(), tuples);
            prop_assert!(!bytes.has_remaining());
        }

        #[test]
        fn prop_text_round_trip(s in ".{0,64}") {
            let v = Value::text(&s);
            prop_assert_eq!(round_trip_value(&v), v);
        }

        #[test]
        fn prop_tuple_round_trip(
            stream in 0u8..4,
            seq in any::<u64>(),
            ts in any::<u64>(),
            ints in proptest::collection::vec(any::<i64>(), 0..8),
        ) {
            let values: Vec<Value> = ints.into_iter().map(Value::Int).collect();
            let t = Tuple::new(StreamId(stream), seq, VirtualTime::from_millis(ts), values);
            let mut buf = BytesMut::new();
            encode_tuple(&mut buf, &t);
            let mut bytes = buf.freeze();
            prop_assert_eq!(decode_tuple(&mut bytes).unwrap(), t);
        }

        #[test]
        fn prop_zigzag_round_trip(v in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    proptest! {
        /// Decoding arbitrary bytes must never panic — it returns a
        /// value (when the bytes happen to parse) or an error.
        #[test]
        fn decode_value_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut b = Bytes::from(data);
            let _ = decode_value(&mut b);
        }

        #[test]
        fn decode_tuple_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut b = Bytes::from(data);
            let _ = decode_tuple(&mut b);
        }

        /// Column-block decoding of arbitrary bytes must never panic.
        #[test]
        fn decode_stream_block_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut b = Bytes::from(data);
            let _ = decode_stream_block(&mut b);
        }

        /// Corrupting any single byte of a valid column block either
        /// still decodes or errors — never panics.
        #[test]
        fn block_bit_flips_never_panic(idx in 0usize..4096, flip in 1u8..255) {
            let templates: Vec<Bytes> = (0..3u8).map(|t| Bytes::from(vec![t; 32])).collect();
            let tuples: Vec<dcape_common::tuple::Tuple> = (0..16u64)
                .map(|i| {
                    dcape_common::tuple::TupleBuilder::new(dcape_common::ids::StreamId(1))
                        .seq(i)
                        .ts(dcape_common::time::VirtualTime::from_millis(i * 30))
                        .value(i as i64 % 5)
                        .value(dcape_common::value::Value::Blob(
                            templates[(i % 3) as usize].clone(),
                        ))
                        .pad(100)
                        .build()
                })
                .collect();
            let mut buf = bytes::BytesMut::new();
            encode_stream_block(&mut buf, &tuples);
            let mut bytes = buf.to_vec();
            let idx = idx % bytes.len();
            bytes[idx] ^= flip;
            let mut b = Bytes::from(bytes);
            let _ = decode_stream_block(&mut b);
        }
    }
}
