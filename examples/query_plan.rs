//! The declarative plan layer: a two-stage join chain with pre-join
//! filtering and post-join aggregation, executed without hand-wiring any
//! sinks — the paper's footnote that "trees of such operators, each with
//! its own join columns, can be naturally supported", made concrete.
//!
//! The query (over three synthetic feeds):
//!
//! ```sql
//! SELECT region, count(*), avg(volume)
//! FROM quotes q JOIN orders o ON q.instrument = o.instrument
//!               JOIN venues v ON q.instrument = v.instrument
//! WHERE o.volume > 100
//! GROUP BY v.region
//! ```
//!
//! ```sh
//! cargo run --release --example query_plan
//! ```

use dcape::common::ids::StreamId;
use dcape::common::time::VirtualTime;
use dcape::common::{Tuple, Value};
use dcape::engine::operators::aggregate::{AggExpr, AggregateFunction};
use dcape::engine::operators::select::{CmpOp, Predicate};
use dcape::engine::plan::{JoinStage, PlanExecutor, QueryPlan, UnaryOp};
use dcape::engine::sink::CountingSink;

fn tuple(stream: u8, seq: u64, values: Vec<Value>) -> Tuple {
    Tuple::new(
        StreamId(stream),
        seq,
        VirtualTime::from_millis(seq * 30),
        values,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("dcape {} — declarative query plans\n", dcape::VERSION);

    // Stage 0 joins quotes (stream 0) with orders (stream 1) on the
    // instrument id (column 0 of both). Stage 1 joins that output
    // (column 0 still carries the instrument id) with venues (stream 2).
    let plan = QueryPlan {
        pre: vec![
            vec![], // quotes: pass through
            vec![UnaryOp::Select(Predicate::ColumnCmp {
                column: 1,
                op: CmpOp::Gt,
                value: Value::Int(100),
            })], // orders: WHERE volume > 100
            vec![], // venues
        ],
        stages: vec![
            JoinStage {
                arity: 2,
                join_columns: vec![0, 0],
                num_partitions: 16,
            },
            JoinStage {
                arity: 2,
                join_columns: vec![0, 0],
                num_partitions: 16,
            },
        ],
        // Flattened row: [instr, price, instr, volume, instr, region].
        post: vec![],
        aggregate: Some((
            vec![5], // GROUP BY region
            vec![
                AggExpr {
                    func: AggregateFunction::Count,
                    column: 5,
                },
                AggExpr {
                    func: AggregateFunction::Avg,
                    column: 3,
                },
            ],
        )),
    };
    let mut exec = PlanExecutor::new(plan)?;
    let mut sink = CountingSink::new();

    let regions = ["emea", "amer", "apac"];
    for seq in 0..3000u64 {
        let instrument = (seq % 40) as i64;
        // quotes(instr, price)
        exec.feed(
            tuple(
                0,
                seq,
                vec![
                    Value::Int(instrument),
                    Value::Double(1.0 + (seq % 7) as f64),
                ],
            ),
            &mut sink,
        )?;
        // orders(instr, volume) — about half survive the filter
        exec.feed(
            tuple(
                1,
                seq,
                vec![Value::Int(instrument), Value::Int((seq % 200) as i64)],
            ),
            &mut sink,
        )?;
        // venues(instr, region) — one per instrument, early on
        if seq < 40 {
            exec.feed(
                tuple(
                    2,
                    seq,
                    vec![
                        Value::Int(instrument),
                        Value::text(regions[(seq % 3) as usize]),
                    ],
                ),
                &mut sink,
            )?;
        }
    }

    println!("final results emitted : {}", sink.count());
    println!("join-state bytes      : {}", exec.state_bytes());
    println!("\n{:<8} {:>10} {:>12}", "region", "count", "avg(volume)");
    println!("{:-<8} {:->10} {:->12}", "", "", "");
    for row in exec.aggregate().unwrap().results() {
        println!(
            "{:<8} {:>10} {:>12.1}",
            row[0].as_text().unwrap_or("?"),
            row[1].as_int().unwrap_or(0),
            row[2].as_double().unwrap_or(f64::NAN),
        );
    }
    Ok(())
}
