//! Quickstart: one query engine, a state-intensive three-way join,
//! memory overflow, state spill, and the cleanup phase.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dcape::common::ids::EngineId;
use dcape::common::time::{VirtualDuration, VirtualTime};
use dcape::engine::config::EngineConfig;
use dcape::engine::engine::QueryEngine;
use dcape::engine::sink::CountingSink;
use dcape::engine::VictimPolicy;
use dcape::streamgen::{StreamSetGenerator, StreamSetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("dcape {} — quickstart\n", dcape::VERSION);

    // A three-stream workload: 16 partitions, every join value repeats
    // once per 4 800-tuple range, one tuple per stream every 30 ms.
    let spec = StreamSetSpec::uniform(16, 4_800, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(512);
    let mut gen = StreamSetGenerator::new(spec)?;
    let partitioner = gen.partitioner();

    // One engine with a deliberately tiny memory budget, so the spill
    // adaptation has to kick in: 2 MiB threshold, push the least
    // productive 30% whenever the ss_timer sees an overflow.
    let cfg = EngineConfig::three_way(3 << 20, 2 << 20)
        .with_policy(VictimPolicy::LeastProductive)
        .with_spill_fraction(0.3);
    let mut engine = QueryEngine::in_memory(EngineId(0), cfg)?;

    // Run 12 virtual minutes of input.
    let deadline = VirtualTime::from_mins(12);
    let mut sink = CountingSink::new();
    let tuples = gen.generate_until(deadline);
    println!("processing {} tuples ...", tuples.len());
    for tuple in tuples {
        let now = tuple.ts();
        let pid = partitioner.partition_of(&tuple.values()[0]);
        engine.process(pid, tuple, &mut sink)?;
        engine.tick(now)?; // drives the ss_timer against arrival time
    }

    println!("run-time phase:");
    println!("  results produced : {}", sink.count());
    println!("  spill adaptations: {}", engine.spill_history().len());
    println!(
        "  state on disk    : {:.2} MiB ({} segments)",
        engine.store().state_bytes_on_disk() as f64 / (1 << 20) as f64,
        engine.store().segment_count(),
    );
    println!(
        "  memory in use    : {:.2} MiB",
        engine.memory_used() as f64 / (1 << 20) as f64
    );

    // The cleanup phase merges disk-resident segments back and emits
    // exactly the missing results — no duplicates, no losses.
    let mut cleanup_sink = CountingSink::new();
    let report = engine.cleanup(&mut cleanup_sink)?;
    println!("\ncleanup phase:");
    println!("  partitions merged: {}", report.partitions);
    println!("  missing results  : {}", report.missing_results);
    println!(
        "  modeled cost     : {} ms of virtual time",
        report.virtual_cost.as_millis()
    );
    println!("\ntotal results: {}", sink.count() + cleanup_sink.count());
    Ok(())
}
