//! Live state relocation on the *threaded* runtime: two engines on
//! real OS threads, alternating 10x input skew, the full 8-step
//! relocation protocol over channels — and the invariant that no result
//! is lost or duplicated despite all the movement.
//!
//! ```sh
//! cargo run --release --example skewed_workload
//! ```

use std::collections::HashMap;

use dcape::cluster::runtime::sim::{SimConfig, SimDriver};
use dcape::cluster::runtime::threaded::run_threaded;
use dcape::cluster::strategy::StrategyConfig;
use dcape::cluster::PlacementSpec;
use dcape::common::ids::PartitionId;
use dcape::common::time::{VirtualDuration, VirtualTime};
use dcape::engine::config::EngineConfig;
use dcape::streamgen::{ArrivalPattern, StreamSetGenerator, StreamSetSpec};

fn workload() -> StreamSetSpec {
    let group_a: Vec<PartitionId> = (0..16).map(PartitionId).collect();
    StreamSetSpec::uniform(32, 6_000, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(256)
        .with_pattern(ArrivalPattern::AlternatingSkew {
            group_a,
            ratio: 10.0,
            period: VirtualDuration::from_mins(5),
        })
}

/// Reference join count, independent of any engine code path.
fn reference_count(deadline: VirtualTime) -> u64 {
    let mut gen = StreamSetGenerator::new(workload()).unwrap();
    let tuples = gen.generate_until(deadline);
    let mut counts: HashMap<(u8, i64), u64> = HashMap::new();
    for t in &tuples {
        *counts
            .entry((t.stream().0, t.values()[0].as_int().unwrap()))
            .or_default() += 1;
    }
    let keys: std::collections::HashSet<i64> = counts.keys().map(|(_, k)| *k).collect();
    keys.into_iter()
        .map(|k| {
            (0..3u8)
                .map(|s| counts.get(&(s, k)).copied().unwrap_or(0))
                .product::<u64>()
        })
        .sum()
}

fn config() -> SimConfig {
    SimConfig::new(
        2,
        EngineConfig::three_way(1 << 30, 1 << 29), // roomy: relocation-only
        workload(),
        StrategyConfig::LazyDisk {
            theta_r: 0.9,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]))
    .with_stats_interval(VirtualDuration::from_secs(45))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "dcape {} — relocation under alternating skew (threaded runtime)\n",
        dcape::VERSION
    );
    let deadline = VirtualTime::from_mins(25);
    let reference = reference_count(deadline);

    println!("running on real threads (full Figure 8 protocol over channels) ...");
    let threaded = run_threaded(config(), deadline)?;
    println!("  relocations      : {}", threaded.relocations);
    println!("  run-time output  : {}", threaded.runtime_output);
    println!("  cleanup output   : {}", threaded.cleanup_output);
    println!(
        "  cleanup wall     : {} ms (parallel, modeled)",
        threaded.cleanup_wall_ms
    );

    println!("\nrunning the same experiment on the deterministic sim driver ...");
    let mut sim = SimDriver::new(config())?;
    sim.run_until(deadline)?;
    for r in sim.relocations() {
        println!(
            "  t={:>5.1}min  {} -> {}  {} partitions, {:.2} MiB, {} tuples buffered",
            r.at.as_mins_f64(),
            r.sender,
            r.receiver,
            r.parts,
            r.bytes as f64 / (1 << 20) as f64,
            r.buffered_tuples,
        );
    }
    let moved =
        dcape::metrics::Summary::of(sim.relocations().iter().map(|r| r.bytes as f64 / 1024.0));
    println!("  moved KiB per relocation: {}", moved.render());
    let sim_report = sim.finish()?;

    println!("\ncorrectness (no loss, no duplication):");
    println!("  reference join count : {reference}");
    println!("  threaded total       : {}", threaded.total_output());
    println!("  sim total            : {}", sim_report.total_output());
    assert_eq!(threaded.total_output(), reference);
    assert_eq!(sim_report.total_output(), reference);
    println!("  OK — all three agree");
    Ok(())
}
