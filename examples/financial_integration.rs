//! The paper's motivating scenario (§1, Figure 1 and Query 1): a
//! real-time financial data integration server joining currency offer
//! streams from three banks and reporting, per broker, the minimum
//! offered price:
//!
//! ```sql
//! SELECT brokerName, min(price)
//! FROM bank1, bank2, bank3
//! WHERE bank1.offerCurrency = bank2.offerCurrency
//!   AND bank2.offerCurrency = bank3.offerCurrency ...
//! GROUP BY brokerName
//! ```
//!
//! Built directly on the operator API: a symmetric three-way hash join
//! partitioned by currency, a projection, and a streaming group-by
//! aggregate — demonstrating that the engine is a general operator
//! library, not only a harness for the paper's synthetic workloads.
//!
//! ```sh
//! cargo run --release --example financial_integration
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcape::common::ids::{EngineId, PartitionId, StreamId};
use dcape::common::time::VirtualTime;
use dcape::common::{Partitioner, Tuple, Value};
use dcape::engine::config::EngineConfig;
use dcape::engine::engine::QueryEngine;
use dcape::engine::operators::aggregate::{
    flatten_result, AggExpr, AggregateFunction, GroupByAggregate,
};
use dcape::engine::sink::ResultSink;

const CURRENCIES: &[&str] = &["USD", "EUR", "GBP", "JPY", "CHF", "AUD", "CAD", "SEK"];
const BROKERS: &[&str] = &["alpine", "borealis", "cumulus", "drift", "ember"];

/// One bank's offer tuple: (offerCurrency, brokerName, price).
fn offer(bank: u8, seq: u64, rng: &mut StdRng) -> Tuple {
    let currency = CURRENCIES[rng.gen_range(0..CURRENCIES.len())];
    let broker = BROKERS[rng.gen_range(0..BROKERS.len())];
    let price = 0.5 + rng.gen::<f64>() * 2.0;
    Tuple::new(
        StreamId(bank),
        seq,
        VirtualTime::from_millis(seq * 30),
        vec![
            Value::text(currency),
            Value::text(broker),
            Value::Double(price),
        ],
    )
}

/// Sink that pipes every three-bank match through the aggregation.
struct Query1Sink {
    agg: GroupByAggregate,
    matches: u64,
}

impl ResultSink for Query1Sink {
    fn emit(&mut self, parts: &[&Tuple]) {
        // Flattened row: [cur1, broker1, price1, cur2, broker2, price2,
        // cur3, broker3, price3]. Query 1 groups by bank1's broker and
        // minimizes bank1's price.
        let row = flatten_result(parts);
        self.agg
            .process(&row)
            .expect("aggregation over join output");
        self.matches += 1;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "dcape {} — Query 1: financial data integration\n",
        dcape::VERSION
    );

    let partitioner = Partitioner::hash(32);
    let cfg = EngineConfig::three_way(64 << 20, 48 << 20);
    let mut engine = QueryEngine::in_memory(EngineId(0), cfg)?;
    let mut sink = Query1Sink {
        agg: GroupByAggregate::new(
            vec![1], // GROUP BY bank1.brokerName
            vec![
                AggExpr {
                    func: AggregateFunction::Min,
                    column: 2, // min(bank1.price)
                },
                AggExpr {
                    func: AggregateFunction::Count,
                    column: 2,
                },
            ],
        ),
        matches: 0,
    };

    let mut rng = StdRng::seed_from_u64(2007);
    let rounds = 600u64;
    for seq in 0..rounds {
        for bank in 0..3u8 {
            let tuple = offer(bank, seq, &mut rng);
            let pid: PartitionId = partitioner.partition_of(&tuple.values()[0]);
            engine.process(pid, tuple, &mut sink)?;
        }
    }

    println!(
        "{} offers/bank processed, {} three-bank currency matches\n",
        rounds, sink.matches
    );
    println!("{:<10} {:>12} {:>12}", "broker", "min(price)", "matches");
    println!("{:-<10} {:->12} {:->12}", "", "", "");
    for row in sink.agg.results() {
        let broker = row[0].as_text().unwrap_or("?");
        let min_price = row[1].as_double().unwrap_or(f64::NAN);
        let count = row[2].as_int().unwrap_or(0);
        println!("{broker:<10} {min_price:>12.4} {count:>12}");
    }
    println!(
        "\nengine state: {:.2} MiB across {} partition groups",
        engine.memory_used() as f64 / (1 << 20) as f64,
        engine.join().group_count()
    );
    Ok(())
}
