//! The infinite-stream regime: the paper's intro notes that the
//! adaptation techniques "could also be applied to cases with infinite
//! data streams as long as operators have finite window sizes". This
//! example runs a sliding-window three-way join for a long stretch of
//! virtual time and shows that state stays bounded (purging) while
//! results remain exactly the windowed join.
//!
//! ```sh
//! cargo run --release --example windowed_stream
//! ```

use dcape::common::ids::{EngineId, PartitionId};
use dcape::common::time::{VirtualDuration, VirtualTime};
use dcape::engine::config::EngineConfig;
use dcape::engine::engine::QueryEngine;
use dcape::engine::sink::CountingSink;
use dcape::streamgen::{StreamSetGenerator, StreamSetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "dcape {} — sliding-window join over an unbounded stream\n",
        dcape::VERSION
    );

    let window = VirtualDuration::from_secs(60);
    let spec = StreamSetSpec::uniform(32, 2_000, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(256);
    let mut gen = StreamSetGenerator::new(spec)?;
    let partitioner = gen.partitioner();

    let mut cfg = EngineConfig::three_way(1 << 30, 1 << 29);
    cfg.join = cfg.join.with_window(window);
    cfg.ss_timer = VirtualDuration::from_secs(5); // purge cadence
    let mut engine = QueryEngine::in_memory(EngineId(0), cfg)?;
    let mut sink = CountingSink::new();

    println!(
        "{:>8} {:>14} {:>12} {:>10}",
        "t(min)", "results", "state(KiB)", "groups"
    );
    let mut peak = 0u64;
    for minute in 1..=30u64 {
        for tuple in gen.generate_until(VirtualTime::from_mins(minute)) {
            let now = tuple.ts();
            let pid: PartitionId = partitioner.partition_of(&tuple.values()[0]);
            engine.process(pid, tuple, &mut sink)?;
            engine.tick(now)?; // ss_timer: purges expired tuples
        }
        peak = peak.max(engine.memory_used());
        if minute % 5 == 0 {
            println!(
                "{:>8} {:>14} {:>12.1} {:>10}",
                minute,
                sink.count(),
                engine.memory_used() as f64 / 1024.0,
                engine.join().group_count(),
            );
        }
    }
    println!(
        "\nstate stayed bounded: peak {:.1} KiB over 30 minutes of stream \
         (an unwindowed run would grow without bound)",
        peak as f64 / 1024.0
    );
    println!("spills needed: {}", engine.spill_history().len());
    Ok(())
}
