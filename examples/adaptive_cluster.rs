//! Three query engines under memory pressure: compare the paper's two
//! integrated strategies — lazy-disk and active-disk — on a workload
//! with a per-machine productivity gap (the Figure 13 scenario).
//!
//! Both runs record the adaptation-event journal; the tail of each
//! timeline is printed so the spill/relocation decisions can be read
//! alongside the throughput numbers.
//!
//! ```sh
//! cargo run --release --example adaptive_cluster
//! ```

use dcape::cluster::runtime::sim::{SimConfig, SimDriver};
use dcape::cluster::strategy::StrategyConfig;
use dcape::cluster::PlacementSpec;
use dcape::common::ids::PartitionId;
use dcape::common::time::{VirtualDuration, VirtualTime};
use dcape::engine::config::EngineConfig;
use dcape::streamgen::{ClassAssignment, PartitionClass, StreamSetSpec};

/// 48 partitions: engine 0's block joins 4x per range, the rest 1x —
/// a productivity gap only the active-disk strategy exploits.
fn workload() -> StreamSetSpec {
    let hot: Vec<PartitionId> = (0..16).map(PartitionId).collect();
    let cold: Vec<PartitionId> = (16..48).map(PartitionId).collect();
    let mut spec = StreamSetSpec::uniform(48, 12_000, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(512);
    spec.classes = vec![
        PartitionClass {
            assignment: ClassAssignment::Explicit(hot),
            join_rate: 4,
            tuple_range: 12_000,
        },
        PartitionClass {
            assignment: ClassAssignment::Explicit(cold),
            join_rate: 1,
            tuple_range: 12_000,
        },
    ];
    spec
}

fn run(strategy: StrategyConfig, label: &str) -> Result<u64, Box<dyn std::error::Error>> {
    let engine = EngineConfig::three_way(9 << 20, 6 << 20);
    let cfg = SimConfig::new(3, engine, workload(), strategy)
        .with_placement(PlacementSpec::Fractions(vec![
            1.0 / 3.0,
            1.0 / 3.0,
            1.0 / 3.0,
        ]))
        .with_stats_interval(VirtualDuration::from_secs(45))
        .with_journal();
    let mut driver = SimDriver::new(cfg)?;
    driver.run_until(VirtualTime::from_mins(30))?;
    let relocations = driver.relocations().len();
    let report = driver.finish()?;
    let c = report.journal_counters;
    println!("{label}:");
    println!("  run-time output : {}", report.runtime_output);
    println!("  cleanup output  : {}", report.cleanup_output);
    println!("  local spills    : {:?}", report.spill_counts);
    println!("  forced spills   : {}", report.force_spills);
    println!("  relocations     : {relocations}");
    println!(
        "  journal         : {} events ({} spill bytes, {} relocated bytes)",
        report.journal.len(),
        c.spill_bytes,
        c.relocation_bytes
    );
    println!("{}", report.summary_table().render());
    // Everything except the (noisy) periodic stats samples, last 12.
    let adaptations: Vec<_> = report
        .journal
        .iter()
        .filter(|e| e.event.kind() != "stats_sample")
        .cloned()
        .collect();
    let tail = adaptations.len().saturating_sub(12);
    println!("adaptation timeline (tail):");
    println!("{}", dcape::metrics::render_journal(&adaptations[tail..]));
    Ok(report.runtime_output)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "dcape {} — lazy-disk vs active-disk on a 3-engine cluster\n",
        dcape::VERSION
    );
    let lazy = run(
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        },
        "lazy-disk (Algorithm 1)",
    )?;
    let active = run(
        StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 2.0,
            spill_fraction: 0.3,
            force_spill_cap: 10 << 20,
        },
        "active-disk (Algorithm 2)",
    )?;
    println!(
        "active-disk produced {:.1}% {} run-time output than lazy-disk",
        (active as f64 / lazy as f64 - 1.0).abs() * 100.0,
        if active >= lazy { "more" } else { "less" }
    );
    Ok(())
}
