//! # dcape — Distributed Continuous Adaptive Processing Engine
//!
//! A Rust reproduction of *"Optimizing State-Intensive Non-Blocking
//! Queries Using Run-time Adaptation"* (Liu, Jbantova, Rundensteiner —
//! ICDE 2007): partitioned parallel processing of state-intensive
//! non-blocking queries (m-way symmetric hash joins) with two integrated
//! run-time adaptations, **state spill** to disk and **state relocation**
//! across machines, coordinated by the **lazy-disk** and **active-disk**
//! strategies.
//!
//! This facade crate re-exports the workspace crates; see each for depth:
//!
//! * [`common`] — tuples, values, virtual time, memory accounting.
//! * [`streamgen`] — the paper's synthetic workload model (join
//!   multiplicative factor, tuple range, join rate, skew patterns).
//! * [`storage`] — spill segments, binary codec, spill store.
//! * [`engine`] — operators (split / m-way join / union / aggregates),
//!   partition-group state, productivity metrics, spill policies and the
//!   cleanup phase, the local adaptation controller.
//! * [`cluster`] — the global coordinator, the 8-step relocation
//!   protocol, adaptation strategies, and the simulated + threaded
//!   cluster runtimes.
//! * [`metrics`] — time-series recording and report tables.
//!
//! ## Quickstart
//!
//! A three-way symmetric hash join with a deliberately tiny memory
//! budget: the engine spills the least productive partition groups and
//! the cleanup phase later delivers exactly the missed results:
//!
//! ```
//! use dcape::common::ids::{EngineId, PartitionId, StreamId};
//! use dcape::common::time::VirtualTime;
//! use dcape::common::{Tuple, Value};
//! use dcape::engine::config::EngineConfig;
//! use dcape::engine::engine::QueryEngine;
//! use dcape::engine::sink::CountingSink;
//!
//! let cfg = EngineConfig::three_way(1 << 20, 64 << 10); // 1 MiB budget
//! let mut engine = QueryEngine::in_memory(EngineId(0), cfg)?;
//! let mut results = CountingSink::new();
//!
//! for seq in 0..200u64 {
//!     for stream in 0..3u8 {
//!         let t = Tuple::new(
//!             StreamId(stream),
//!             seq,
//!             VirtualTime::from_millis(seq * 30),
//!             vec![Value::Int((seq % 16) as i64)], // join key
//!         );
//!         engine.process(PartitionId((seq % 16) as u32), t, &mut results)?;
//!         engine.tick(VirtualTime::from_millis(seq * 30))?; // ss_timer
//!     }
//! }
//!
//! let mut missed = CountingSink::new();
//! let report = engine.cleanup(&mut missed)?;
//! // Run-time + cleanup results together are the exact join.
//! assert!(results.count() > 0);
//! assert_eq!(report.missing_results, missed.count());
//! # Ok::<(), dcape::common::DcapeError>(())
//! ```
//!
//! See `examples/` for complete programs: `quickstart.rs` (spill +
//! cleanup), `financial_integration.rs` (the intro's Query 1),
//! `adaptive_cluster.rs` (lazy- vs active-disk on three engines),
//! `skewed_workload.rs` (live relocation on the threaded runtime) and
//! `query_plan.rs` (declarative join-chain plans).
//!
//! ## Simulated cluster in five lines
//!
//! ```
//! use dcape::cluster::runtime::sim::{SimConfig, SimDriver};
//! use dcape::cluster::strategy::StrategyConfig;
//! use dcape::common::time::{VirtualDuration, VirtualTime};
//! use dcape::engine::config::EngineConfig;
//! use dcape::streamgen::StreamSetSpec;
//!
//! let workload = StreamSetSpec::uniform(16, 1600, 1, VirtualDuration::from_millis(30));
//! let cfg = SimConfig::new(
//!     2,
//!     EngineConfig::three_way(8 << 20, 4 << 20),
//!     workload,
//!     StrategyConfig::lazy_default(),
//! );
//! let mut driver = SimDriver::new(cfg)?;
//! driver.run_until(VirtualTime::from_mins(2))?;
//! let report = driver.finish()?;
//! assert!(report.runtime_output > 0);
//! # Ok::<(), dcape::common::DcapeError>(())
//! ```

pub use dcape_cluster as cluster;
pub use dcape_common as common;
pub use dcape_engine as engine;
pub use dcape_metrics as metrics;
pub use dcape_storage as storage;
pub use dcape_streamgen as streamgen;

/// Workspace version, for examples to print.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
