//! Cross-crate integration: record a generated workload as a trace
//! artifact, replay it into an engine, and confirm the replayed run is
//! byte-identical in results to the direct run.

use dcape::common::ids::{EngineId, PartitionId};
use dcape::common::time::{VirtualDuration, VirtualTime};
use dcape::engine::config::EngineConfig;
use dcape::engine::engine::QueryEngine;
use dcape::engine::sink::CountingSink;
use dcape::storage::{TraceReader, TraceWriter};
use dcape::streamgen::{StreamSetGenerator, StreamSetSpec};

#[test]
fn recorded_trace_replays_identically() {
    let spec = StreamSetSpec::uniform(16, 1_600, 2, VirtualDuration::from_millis(30))
        .with_payload_pad(128)
        .with_seed(7);
    let mut gen = StreamSetGenerator::new(spec).unwrap();
    let partitioner = gen.partitioner();
    let tuples = gen.generate_until(VirtualTime::from_mins(2));

    // Record.
    let path = std::env::temp_dir().join(format!("dcape-replay-{}.trace", std::process::id()));
    let mut writer = TraceWriter::create(&path).unwrap();
    for t in &tuples {
        writer.write(t).unwrap();
    }
    assert_eq!(writer.finish().unwrap(), tuples.len() as u64);

    // Direct run.
    let run = |input: Vec<dcape::common::Tuple>| -> u64 {
        let mut engine =
            QueryEngine::in_memory(EngineId(0), EngineConfig::three_way(1 << 30, 1 << 29)).unwrap();
        let mut sink = CountingSink::new();
        for t in input {
            let pid: PartitionId = partitioner.partition_of(&t.values()[0]);
            engine.process(pid, t, &mut sink).unwrap();
        }
        sink.count()
    };
    let direct = run(tuples.clone());

    // Replayed run.
    let replayed: Vec<dcape::common::Tuple> = TraceReader::open(&path)
        .unwrap()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(replayed, tuples, "trace must reproduce the stream exactly");
    let from_trace = run(replayed);
    assert_eq!(direct, from_trace);
    assert!(direct > 0);
    std::fs::remove_file(&path).unwrap();
}
