//! Cross-crate integration: a complete Query-1-style pipeline through
//! the `dcape` facade — generator → partitioner → engine (m-way join) →
//! flatten → group-by aggregate — validated against a naive
//! recomputation over the same input.

use std::collections::HashMap;

use dcape::common::ids::{EngineId, StreamId};
use dcape::common::time::VirtualTime;
use dcape::common::{Partitioner, Tuple, Value};
use dcape::engine::config::EngineConfig;
use dcape::engine::engine::QueryEngine;
use dcape::engine::operators::aggregate::{
    flatten_result, AggExpr, AggregateFunction, GroupByAggregate,
};
use dcape::engine::sink::ResultSink;

const CURRENCIES: &[&str] = &["USD", "EUR", "GBP", "JPY"];
const BROKERS: &[&str] = &["a", "b", "c"];

fn offer(bank: u8, seq: u64) -> Tuple {
    // Deterministic pseudo-random attributes from a simple mix.
    let mix = (seq.wrapping_mul(2654435761).wrapping_add(bank as u64 * 97)) as usize;
    let currency = CURRENCIES[mix % CURRENCIES.len()];
    let broker = BROKERS[(mix / 7) % BROKERS.len()];
    let price = 1.0 + ((mix / 13) % 100) as f64 / 100.0;
    Tuple::new(
        StreamId(bank),
        seq,
        VirtualTime::from_millis(seq * 30),
        vec![
            Value::text(currency),
            Value::text(broker),
            Value::Double(price),
        ],
    )
}

struct AggSink {
    agg: GroupByAggregate,
    matches: u64,
}

impl ResultSink for AggSink {
    fn emit(&mut self, parts: &[&Tuple]) {
        self.agg.process(&flatten_result(parts)).unwrap();
        self.matches += 1;
    }
}

#[test]
fn join_plus_aggregate_matches_naive_recomputation() {
    let partitioner = Partitioner::hash(16);
    let mut engine =
        QueryEngine::in_memory(EngineId(0), EngineConfig::three_way(64 << 20, 48 << 20)).unwrap();
    let mut sink = AggSink {
        agg: GroupByAggregate::new(
            vec![1],
            vec![
                AggExpr {
                    func: AggregateFunction::Min,
                    column: 2,
                },
                AggExpr {
                    func: AggregateFunction::Count,
                    column: 2,
                },
            ],
        ),
        matches: 0,
    };

    let n = 400u64;
    let mut all: Vec<Tuple> = Vec::new();
    for seq in 0..n {
        for bank in 0..3u8 {
            let t = offer(bank, seq);
            all.push(t.clone());
            let pid = partitioner.partition_of(&t.values()[0]);
            engine.process(pid, t, &mut sink).unwrap();
        }
    }

    // Naive recomputation: all same-currency triples; per bank1-broker,
    // min bank1 price and count.
    let by_stream = |s: u8| all.iter().filter(move |t| t.stream().0 == s);
    let mut naive_matches = 0u64;
    let mut naive: HashMap<String, (f64, i64)> = HashMap::new();
    for t1 in by_stream(0) {
        for t2 in by_stream(1) {
            if t1.get(0) != t2.get(0) {
                continue;
            }
            for t3 in by_stream(2) {
                if t2.get(0) != t3.get(0) {
                    continue;
                }
                naive_matches += 1;
                let broker = t1.get(1).unwrap().as_text().unwrap().to_owned();
                let price = t1.get(2).unwrap().as_double().unwrap();
                let e = naive.entry(broker).or_insert((f64::INFINITY, 0));
                e.0 = e.0.min(price);
                e.1 += 1;
            }
        }
    }

    assert_eq!(sink.matches, naive_matches, "join cardinality mismatch");
    let rows = sink.agg.results();
    assert_eq!(rows.len(), naive.len(), "group count mismatch");
    for row in rows {
        let broker = row[0].as_text().unwrap();
        let (naive_min, naive_count) = naive[broker];
        assert_eq!(row[1], Value::Double(naive_min), "min(price) for {broker}");
        assert_eq!(row[2], Value::Int(naive_count), "count for {broker}");
    }
}

#[test]
fn spill_during_aggregation_pipeline_preserves_totals() {
    // Same pipeline but with a tiny memory budget: the engine spills and
    // the cleanup phase must deliver the remaining matches.
    let partitioner = Partitioner::hash(16);
    let mut engine =
        QueryEngine::in_memory(EngineId(0), EngineConfig::three_way(1 << 20, 96 << 10)).unwrap();
    let mut runtime = dcape::engine::sink::CountingSink::new();
    let n = 400u64;
    let mut all: Vec<Tuple> = Vec::new();
    for seq in 0..n {
        for bank in 0..3u8 {
            let t = offer(bank, seq);
            all.push(t.clone());
            let pid = partitioner.partition_of(&t.values()[0]);
            engine.process(pid, t, &mut runtime).unwrap();
        }
        engine.tick(VirtualTime::from_millis(seq * 30)).unwrap();
    }
    let mut cleanup = dcape::engine::sink::CountingSink::new();
    let report = engine.cleanup(&mut cleanup).unwrap();
    assert!(
        !engine.spill_history().is_empty(),
        "budget must force spills"
    );
    assert!(report.missing_results == cleanup.count());

    // Reference cardinality.
    let mut per_currency: HashMap<&str, [u64; 3]> = HashMap::new();
    for t in &all {
        per_currency
            .entry(t.get(0).unwrap().as_text().unwrap())
            .or_default()[t.stream().index()] += 1;
    }
    let expected: u64 = per_currency.values().map(|c| c[0] * c[1] * c[2]).sum();
    assert_eq!(runtime.count() + cleanup.count(), expected);
}
