//! Property-based invariants of the adaptation machinery, across crates.
//!
//! The central theorem of the reproduction: **for any workload and any
//! adaptation schedule, run-time results + cleanup results = the
//! reference join, exactly once each.** Spills, relocations, strategy
//! choice, placement skew — none of it may change the answer, only its
//! timing.

use std::collections::HashMap;

use proptest::prelude::*;

use dcape::cluster::runtime::sim::{SimConfig, SimDriver};
use dcape::cluster::strategy::StrategyConfig;
use dcape::cluster::PlacementSpec;
use dcape::common::time::{VirtualDuration, VirtualTime};
use dcape::engine::config::EngineConfig;
use dcape::streamgen::{StreamSetGenerator, StreamSetSpec};

fn reference_count(spec: &StreamSetSpec, deadline: VirtualTime) -> u64 {
    let mut gen = StreamSetGenerator::new(spec.clone()).unwrap();
    let tuples = gen.generate_until(deadline);
    let mut counts: HashMap<(u8, i64), u64> = HashMap::new();
    for t in &tuples {
        *counts
            .entry((t.stream().0, t.values()[0].as_int().unwrap()))
            .or_default() += 1;
    }
    let keys: std::collections::HashSet<i64> = counts.keys().map(|(_, k)| *k).collect();
    keys.into_iter()
        .map(|k| {
            (0..spec.num_streams as u8)
                .map(|s| counts.get(&(s, k)).copied().unwrap_or(0))
                .product::<u64>()
        })
        .sum()
}

fn strategy_from(idx: u8) -> StrategyConfig {
    match idx % 3 {
        0 => StrategyConfig::NoAdaptation,
        1 => StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(30),
        },
        _ => StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(30),
            lambda: 1.5,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 20,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full (small) cluster run
        ..ProptestConfig::default()
    })]

    #[test]
    fn any_schedule_produces_exactly_the_reference_join(
        seed in 0u64..1000,
        num_engines in 1usize..4,
        strategy_idx in 0u8..3,
        threshold_kb in 48u64..512,
        minutes in 2u64..5,
        skew in 0usize..3,
    ) {
        let spec = StreamSetSpec::uniform(18, 1800, 1, VirtualDuration::from_millis(30))
            .with_payload_pad(128)
            .with_seed(seed);
        let deadline = VirtualTime::from_mins(minutes);
        let reference = reference_count(&spec, deadline);

        let engine = EngineConfig::three_way(64 << 20, threshold_kb << 10);
        let placement = match (skew, num_engines) {
            (_, 1) => PlacementSpec::RoundRobin,
            (0, _) => PlacementSpec::RoundRobin,
            (1, 2) => PlacementSpec::Fractions(vec![0.7, 0.3]),
            (1, 3) => PlacementSpec::Fractions(vec![0.6, 0.2, 0.2]),
            (_, 2) => PlacementSpec::Fractions(vec![0.5, 0.5]),
            (_, _) => PlacementSpec::Fractions(vec![2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0]),
        };
        let cfg = SimConfig::new(num_engines, engine, spec, strategy_from(strategy_idx))
            .with_placement(placement)
            .with_stats_interval(VirtualDuration::from_secs(20));
        let mut driver = SimDriver::new(cfg).unwrap();
        driver.run_until(deadline).unwrap();
        let report = driver.finish().unwrap();
        prop_assert_eq!(
            report.total_output(),
            reference,
            "strategy={} engines={} threshold={}KB: runtime {} + cleanup {}",
            strategy_idx,
            num_engines,
            threshold_kb,
            report.runtime_output,
            report.cleanup_output
        );
    }

    #[test]
    fn memory_accounting_never_drifts(
        seed in 0u64..1000,
        threshold_kb in 32u64..256,
    ) {
        let spec = StreamSetSpec::uniform(12, 1200, 1, VirtualDuration::from_millis(30))
            .with_payload_pad(64)
            .with_seed(seed);
        let cfg = SimConfig::new(
            2,
            EngineConfig::three_way(64 << 20, threshold_kb << 10),
            spec,
            StrategyConfig::lazy_default(),
        );
        let mut driver = SimDriver::new(cfg).unwrap();
        driver.run_until(VirtualTime::from_mins(3)).unwrap();
        for engine in driver.engines() {
            prop_assert!(engine.assert_accounting_consistent().is_ok());
        }
    }
}
