//! Property-based invariants of the adaptation machinery, across crates.
//!
//! The central theorem of the reproduction: **for any workload and any
//! adaptation schedule, run-time results + cleanup results = the
//! reference join, exactly once each.** Spills, relocations, strategy
//! choice, placement skew — none of it may change the answer, only its
//! timing.

use std::collections::HashMap;

use proptest::prelude::*;

use dcape::cluster::faults::{FaultConfig, FaultPlan};
use dcape::cluster::runtime::sim::{SimConfig, SimDriver};
use dcape::cluster::strategy::StrategyConfig;
use dcape::cluster::PlacementSpec;
use dcape::common::ids::PartitionId;
use dcape::common::time::{VirtualDuration, VirtualTime};
use dcape::engine::config::EngineConfig;
use dcape::streamgen::{ArrivalPattern, StreamSetGenerator, StreamSetSpec};

fn reference_count(spec: &StreamSetSpec, deadline: VirtualTime) -> u64 {
    let mut gen = StreamSetGenerator::new(spec.clone()).unwrap();
    let tuples = gen.generate_until(deadline);
    let mut counts: HashMap<(u8, i64), u64> = HashMap::new();
    for t in &tuples {
        *counts
            .entry((t.stream().0, t.values()[0].as_int().unwrap()))
            .or_default() += 1;
    }
    let keys: std::collections::HashSet<i64> = counts.keys().map(|(_, k)| *k).collect();
    keys.into_iter()
        .map(|k| {
            (0..spec.num_streams as u8)
                .map(|s| counts.get(&(s, k)).copied().unwrap_or(0))
                .product::<u64>()
        })
        .sum()
}

fn strategy_from(idx: u8) -> StrategyConfig {
    match idx % 3 {
        0 => StrategyConfig::NoAdaptation,
        1 => StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(30),
        },
        _ => StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(30),
            lambda: 1.5,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 20,
        },
    }
}

/// A relocation-hungry run where **every** `InstallStates` crash-restarts
/// the receiver after step 5: state shipped and installed, ack never
/// sent. Retries re-ship, crash again, and the coordinator aborts.
fn run_with_certain_install_crash(seed: u64) -> (dcape::cluster::runtime::sim::SimReport, u64) {
    let group_a: Vec<PartitionId> = (0..6).map(PartitionId).collect();
    let spec = StreamSetSpec::uniform(18, 1800, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(128)
        .with_seed(seed)
        .with_pattern(ArrivalPattern::AlternatingSkew {
            group_a,
            ratio: 10.0,
            period: VirtualDuration::from_mins(2),
        });
    let deadline = VirtualTime::from_mins(5);
    let reference = reference_count(&spec, deadline);
    let crash_always = FaultConfig {
        crash_rate: 1.0,
        ..FaultConfig::none()
    };
    let cfg = SimConfig::new(
        2,
        EngineConfig::three_way(1 << 30, 1 << 29),
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.9,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]))
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal()
    .with_faults(FaultPlan::new(seed, crash_always));
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    (driver.finish().unwrap(), reference)
}

/// The deterministic crash-restart scenario of the fault model: the
/// receiver dies mid-relocation *after* the state landed (the ack is
/// lost), restarts empty, and the round aborts. The abort must leave
/// zero buffered tuples behind and produce no duplicate outputs — the
/// sender's retained copy is the single source of truth.
#[test]
fn crash_after_install_aborts_without_loss_or_duplication() {
    let (report, reference) = run_with_certain_install_crash(23);
    // Every attempted round died: no relocation ever completed…
    assert!(report.relocations.is_empty(), "no round may survive");
    let c = &report.journal_counters;
    assert!(c.faults_injected > 0, "crashes must have been injected");
    assert!(c.msgs_retried > 0, "timeouts must have retried first");
    assert!(c.rounds_aborted > 0, "retry exhaustion must abort");
    // …every abort released its held watermark and replayed its
    // buffered tuples; nothing is left parked at a paused split.
    assert_eq!(c.watermark_released_on_abort, c.rounds_aborted);
    assert_eq!(c.buffered_in_flight, 0, "abort left tuples buffered");
    // And the answer is still exact: nothing lost to the crashes,
    // nothing double-counted from re-shipped state.
    assert_eq!(
        report.total_output(),
        reference,
        "crash-abort cycle changed the join result"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full (small) cluster run
        ..ProptestConfig::default()
    })]

    #[test]
    fn any_schedule_produces_exactly_the_reference_join(
        seed in 0u64..1000,
        num_engines in 1usize..4,
        strategy_idx in 0u8..3,
        threshold_kb in 48u64..512,
        minutes in 2u64..5,
        skew in 0usize..3,
    ) {
        let spec = StreamSetSpec::uniform(18, 1800, 1, VirtualDuration::from_millis(30))
            .with_payload_pad(128)
            .with_seed(seed);
        let deadline = VirtualTime::from_mins(minutes);
        let reference = reference_count(&spec, deadline);

        let engine = EngineConfig::three_way(64 << 20, threshold_kb << 10);
        let placement = match (skew, num_engines) {
            (_, 1) => PlacementSpec::RoundRobin,
            (0, _) => PlacementSpec::RoundRobin,
            (1, 2) => PlacementSpec::Fractions(vec![0.7, 0.3]),
            (1, 3) => PlacementSpec::Fractions(vec![0.6, 0.2, 0.2]),
            (_, 2) => PlacementSpec::Fractions(vec![0.5, 0.5]),
            (_, _) => PlacementSpec::Fractions(vec![2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0]),
        };
        let cfg = SimConfig::new(num_engines, engine, spec, strategy_from(strategy_idx))
            .with_placement(placement)
            .with_stats_interval(VirtualDuration::from_secs(20));
        let mut driver = SimDriver::new(cfg).unwrap();
        driver.run_until(deadline).unwrap();
        let report = driver.finish().unwrap();
        prop_assert_eq!(
            report.total_output(),
            reference,
            "strategy={} engines={} threshold={}KB: runtime {} + cleanup {}",
            strategy_idx,
            num_engines,
            threshold_kb,
            report.runtime_output,
            report.cleanup_output
        );
    }

    #[test]
    fn crashed_installs_abort_cleanly_for_any_seed(
        seed in 0u64..1000,
    ) {
        let (report, reference) = run_with_certain_install_crash(seed);
        prop_assert_eq!(report.total_output(), reference);
        prop_assert_eq!(report.journal_counters.buffered_in_flight, 0);
    }

    #[test]
    fn memory_accounting_never_drifts(
        seed in 0u64..1000,
        threshold_kb in 32u64..256,
    ) {
        let spec = StreamSetSpec::uniform(12, 1200, 1, VirtualDuration::from_millis(30))
            .with_payload_pad(64)
            .with_seed(seed);
        let cfg = SimConfig::new(
            2,
            EngineConfig::three_way(64 << 20, threshold_kb << 10),
            spec,
            StrategyConfig::lazy_default(),
        );
        let mut driver = SimDriver::new(cfg).unwrap();
        driver.run_until(VirtualTime::from_mins(3)).unwrap();
        for engine in driver.engines() {
            prop_assert!(engine.assert_accounting_consistent().is_ok());
        }
    }
}
